//! The sharded fleet verifier: many per-device [`AsapVerifier`]s behind
//! an array of independently locked shards.
//!
//! Scale shape: challenge issuance and evidence conclusion are hash-map
//! operations plus (for conclusion) a MAC recomputation. The registry
//! keeps the *map operations* under per-shard mutexes — a shard array
//! seeded at construction ([`FleetVerifier::with_shards`], default
//! [`SHARD_COUNT`]) and grown online by power-of-two splits
//! ([`FleetVerifier::grow_shards`]), shard picked by a multiplicative
//! hash of the device id against the published linear-hashing layout —
//! and performs the MAC work on a clone of the device's verifier
//! *outside* any lock. Two sessions on devices in different shards
//! therefore never contend at all, and even same-shard devices only
//! serialize the cheap map lookups, not the crypto.
//!
//! Membership can churn while rounds are in flight:
//! [`remove`](FleetVerifier::remove) bumps a fleet-wide *membership
//! generation* that [`RoundEngine::sync_membership`] watches, so an
//! evicted device's round resolves deterministically as
//! [`FleetError::Evicted`] instead of dangling to its deadline.

use crate::engine::{RoundConfig, RoundEngine};
use crate::error::FleetError;
use crate::gateway::{FleetGateway, GatewayListener};
use crate::round::RoundReport;
use crate::transport::Transport;
use crate::DeviceId;
use apex_pox::wire::Envelope;
use asap::session::{Issued, PoxSession};
use asap::{AsapVerifier, Attested, VerifierSpec};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, RwLock, Weak};

/// Default number of registry shards
/// ([`FleetVerifier::new`]; override with
/// [`FleetVerifier::with_shards`]). The count can later *grow online*
/// — see [`FleetVerifier::grow_shards`] — but never shrinks, and shard
/// selection stays a pure function of the device id and the published
/// `(base, split)` layout, so readers need one atomic load to address.
pub const SHARD_COUNT: usize = 16;

/// One concluded frame: the device it was attributed to (when the
/// envelope decoded) and the per-device verdict.
pub type Verdict = (Option<DeviceId>, Result<Attested, FleetError>);

/// One enrolled device: its verifier (key + spec + challenge counter)
/// and the session in flight, if any.
struct DeviceEntry {
    verifier: AsapVerifier,
    in_flight: Option<PoxSession<Issued>>,
}

#[derive(Default)]
struct Shard {
    devices: HashMap<DeviceId, DeviceEntry>,
}

/// One chunk of MAC-conclusion work dispatched to an attached runtime
/// pool: conclude `frames[indices]` against `fleet` and send the
/// `(input index, verdict)` pairs back over `reply`.
///
/// Crate-internal: [`FleetRuntime`](crate::FleetRuntime) owns the
/// worker threads that consume these; the registry only produces them
/// (see [`FleetVerifier::conclude_batch_pooled`]).
pub(crate) struct ConcludeJob {
    pub(crate) fleet: Arc<FleetVerifier>,
    pub(crate) frames: Arc<Vec<Vec<u8>>>,
    pub(crate) indices: Vec<usize>,
    pub(crate) reply: Sender<Vec<(usize, Verdict)>>,
}

/// Clears a frame buffer for reuse by the caller's next sweep: the
/// allocation survives, the stale frames do not.
fn recycled(mut frames: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    frames.clear();
    frames
}

/// A runtime-attached conclude pool: where to send [`ConcludeJob`]s,
/// how many workers drain them, and a weak self-reference so jobs can
/// carry an owning handle to this very registry.
struct AttachedPool {
    tx: Sender<ConcludeJob>,
    me: Weak<FleetVerifier>,
    workers: usize,
}

/// A verifier for a whole fleet of provers, keyed by [`DeviceId`].
///
/// All methods take `&self`: the registry is internally synchronized
/// and meant to be shared across verifier threads (`FleetVerifier` is
/// `Send + Sync`). See the [module docs](self) for the locking story,
/// and [`crate`] docs for a full loopback walk-through.
pub struct FleetVerifier {
    /// The shard table. Only [`grow_shards`](FleetVerifier::grow_shards)
    /// takes the write lock, and only long enough to *append* empty
    /// shards; every other access is an uncontended read-lock plus a
    /// clone of one `Arc`.
    shards: RwLock<Vec<Arc<Mutex<Shard>>>>,
    /// The published linear-hashing layout, packed `(base << 32) | split`:
    /// shards `< split` have been rehashed against `2 * base` shards,
    /// the rest still address against `base`. A completed table has
    /// `split == 0`.
    layout: AtomicU64,
    /// Serializes [`grow_shards`](FleetVerifier::grow_shards) calls so
    /// at most one doubling is in flight.
    grow_lock: Mutex<()>,
    /// Worker cap for [`conclude_batch`](FleetVerifier::conclude_batch);
    /// `0` means "follow [`std::thread::available_parallelism`]".
    conclude_workers: AtomicUsize,
    /// Bumped on every [`remove`](FleetVerifier::remove):
    /// [`RoundEngine::sync_membership`] rescans its awaited devices only
    /// when this moved, so churn detection is one atomic load per sweep
    /// in the steady state.
    churn_generation: AtomicU64,
    /// The shared MAC-conclusion pool a [`FleetRuntime`](crate::FleetRuntime)
    /// attaches for the lifetime of the runtime; `None` for standalone
    /// registries, which fall back to the per-batch scoped pool.
    pool: Mutex<Option<AttachedPool>>,
}

impl Default for FleetVerifier {
    fn default() -> FleetVerifier {
        FleetVerifier::new()
    }
}

impl FleetVerifier {
    /// An empty fleet over the default [`SHARD_COUNT`] shards.
    pub fn new() -> FleetVerifier {
        FleetVerifier::with_shards(SHARD_COUNT)
    }

    /// An empty fleet over `shards` lock shards (clamped to at least
    /// one). More shards mean less lock contention for wide conclude
    /// pools and many-reactor gateways; each shard is one mutex plus
    /// one hash map, so a million-device fleet can afford hundreds.
    pub fn with_shards(shards: usize) -> FleetVerifier {
        let shards = shards.max(1);
        FleetVerifier {
            shards: RwLock::new(
                (0..shards)
                    .map(|_| Arc::new(Mutex::new(Shard::default())))
                    .collect(),
            ),
            layout: AtomicU64::new(Self::pack_layout(shards, 0)),
            grow_lock: Mutex::new(()),
            conclude_workers: AtomicUsize::new(0),
            churn_generation: AtomicU64::new(0),
            pool: Mutex::new(None),
        }
    }

    fn pack_layout(base: usize, split: usize) -> u64 {
        ((base as u64) << 32) | split as u64
    }

    /// The published `(base, split)` linear-hashing layout.
    fn layout(&self) -> (usize, usize) {
        let v = self.layout.load(Ordering::Acquire);
        ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
    }

    /// Number of lock shards currently live: the constructed count plus
    /// every split [`grow_shards`](FleetVerifier::grow_shards) has
    /// published so far.
    pub fn shard_count(&self) -> usize {
        let (base, split) = self.layout();
        base + split
    }

    /// Which of `shards` shards holds `id` — the pure hash both
    /// [`shard_of`](FleetVerifier::shard_of) and external partitioners
    /// compute. Every caller agreeing on `shards` computes the same
    /// answer with no coordination.
    pub fn shard_in(id: DeviceId, shards: usize) -> usize {
        // Fibonacci hashing: spreads dense (0, 1, 2, …) id assignments
        // across shards instead of clustering them modulo the count.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % shards.max(1)
    }

    /// `shard_in` against a mid-growth `(base, split)` layout: shards
    /// below the split pointer have already been rehashed to the
    /// doubled table. Doubling preserves residues — `h % 2n` is either
    /// `h % n` or `h % n + n` — so a split moves a device from shard
    /// `s` to `s + base` or leaves it put, never anywhere else.
    fn address_in(id: DeviceId, base: usize, split: usize) -> usize {
        let i = Self::shard_in(id, base);
        if i < split {
            Self::shard_in(id, base * 2)
        } else {
            i
        }
    }

    /// Which registry shard holds `id` in *this* fleet —
    /// [`shard_in`](FleetVerifier::shard_in) over the current layout.
    /// During an online [`grow_shards`](FleetVerifier::grow_shards)
    /// this answer moves exactly once per device, when its old shard's
    /// split is published.
    pub fn shard_of(&self, id: DeviceId) -> usize {
        let (base, split) = self.layout();
        Self::address_in(id, base, split)
    }

    /// Which of `reactors` reactor threads owns `id`'s round state in a
    /// multi-reactor gateway ([`MultiGateway`](crate::MultiGateway)).
    ///
    /// Affinity rides the shard hash: reactor `r` owns exactly the
    /// shards `s` with `s % reactors == r`, so the devices one reactor
    /// concludes live in a disjoint set of registry shards from every
    /// other reactor's — their `conclude` calls never touch the same
    /// shard lock. (With `reactors > shard_count` the surplus reactors
    /// own no devices; they still service connections.)
    ///
    /// # Panics
    ///
    /// When `reactors` is zero.
    pub fn reactor_of(&self, id: DeviceId, reactors: usize) -> usize {
        assert!(reactors > 0, "a gateway needs at least one reactor");
        self.shard_of(id) % reactors
    }

    /// Runs `f` under the lock of the shard that holds `id`, re-checking
    /// the layout after acquisition: if a concurrent
    /// [`grow_shards`](FleetVerifier::grow_shards) split moved `id`
    /// between our address computation and the lock, retry against the
    /// fresh layout. The splitter publishes each split *while holding
    /// both affected shard locks*, so once the address is stable under
    /// the lock the entry (if enrolled) is guaranteed present.
    fn with_shard<R>(&self, id: DeviceId, f: impl FnOnce(&mut Shard) -> R) -> R {
        loop {
            let (base, split) = self.layout();
            let idx = Self::address_in(id, base, split);
            let shard = self.shards.read().unwrap()[idx].clone();
            let mut guard = shard.lock().unwrap();
            let (base2, split2) = self.layout();
            if Self::address_in(id, base2, split2) == idx {
                return f(&mut guard);
            }
        }
    }

    /// Snapshot of every live shard, for whole-fleet sweeps.
    fn shard_snapshot(&self) -> Vec<Arc<Mutex<Shard>>> {
        self.shards.read().unwrap().clone()
    }

    /// Doubles the shard count **online**: appends `base` empty shards,
    /// then splits the existing shards one at a time — each split
    /// rehashes one shard's devices into `(s, s + base)` under exactly
    /// those two shard locks and publishes the move atomically, so
    /// rounds keep issuing and concluding throughout. No global pause,
    /// no session is dropped, and the membership generation does not
    /// move (growth is not churn: no device joins or leaves).
    ///
    /// Returns the new shard count. Concurrent calls serialize; each
    /// completes a full doubling. Reactor affinity
    /// ([`reactor_of`](FleetVerifier::reactor_of)) follows the shard
    /// hash, so devices may migrate to a different reactor on the
    /// *next* round after a growth step — mid-round, the per-shard
    /// mutexes keep cross-reactor conclusion safe, merely contended.
    /// When the pre-growth shard count is a multiple of the reactor
    /// count, affinity is stable even *across* growth (a split moves
    /// shard `s` to `s + base`, and `(s + base) % reactors == s %
    /// reactors`); doubling preserves the property, so seeding shards
    /// as a reactor-count multiple keeps routing stable forever.
    pub fn grow_shards(&self) -> usize {
        let _serialize = self.grow_lock.lock().unwrap();
        let (base, split) = self.layout();
        debug_assert_eq!(split, 0, "grow_lock serializes whole doublings");
        {
            let mut table = self.shards.write().unwrap();
            table.extend((0..base).map(|_| Arc::new(Mutex::new(Shard::default()))));
        }
        let table = self.shard_snapshot();
        for s in 0..base {
            let mut old = table[s].lock().unwrap();
            let mut new = table[s + base].lock().unwrap();
            let moved: Vec<DeviceId> = old
                .devices
                .keys()
                .copied()
                .filter(|&id| Self::shard_in(id, base * 2) != s)
                .collect();
            for id in moved {
                let entry = old.devices.remove(&id).expect("key just listed");
                new.devices.insert(id, entry);
            }
            // Publish while both locks are held: a reader that raced to
            // the old address blocks on `old`, then re-checks the
            // layout and retries at the new address.
            self.layout
                .store(Self::pack_layout(base, s + 1), Ordering::Release);
        }
        // `(base, base)` and `(2 * base, 0)` address identically, so
        // this final store needs no lock.
        self.layout
            .store(Self::pack_layout(base * 2, 0), Ordering::Release);
        base * 2
    }

    /// Caps the [`conclude_batch`](FleetVerifier::conclude_batch)
    /// worker pool at `workers` threads; `0` restores the default of
    /// following [`std::thread::available_parallelism`]. Shared with
    /// the reactor count by [`MultiGateway`](crate::MultiGateway):
    /// each reactor concludes with `parallelism / reactors` workers so
    /// reactors and MAC workers together never oversubscribe the
    /// machine.
    pub fn set_parallelism(&self, workers: usize) {
        self.conclude_workers.store(workers, Ordering::Relaxed);
    }

    /// The effective [`conclude_batch`](FleetVerifier::conclude_batch)
    /// worker cap: the configured knob, or
    /// [`std::thread::available_parallelism`] when unset.
    pub fn parallelism(&self) -> usize {
        match self.conclude_workers.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            n => n,
        }
    }

    /// Enrolls a device under its shared key and image-derived spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateDevice`] when the id is already enrolled.
    pub fn register(&self, id: DeviceId, key: &[u8], spec: VerifierSpec) -> Result<(), FleetError> {
        self.register_shared(id, key, Arc::new(spec))
    }

    /// [`register`](FleetVerifier::register) over an already-shared
    /// spec: every device enrolled from the same `Arc` shares one copy
    /// of the expected `ER` bytes. This is the memory diet for large
    /// fleets — a million devices of one image hold a million keys but
    /// a single spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateDevice`] when the id is already enrolled.
    pub fn register_shared(
        &self,
        id: DeviceId,
        key: &[u8],
        spec: Arc<VerifierSpec>,
    ) -> Result<(), FleetError> {
        self.with_shard(id, |shard| {
            if shard.devices.contains_key(&id) {
                return Err(FleetError::DuplicateDevice(id));
            }
            shard.devices.insert(
                id,
                DeviceEntry {
                    verifier: AsapVerifier::new_shared(key, spec),
                    in_flight: None,
                },
            );
            Ok(())
        })
    }

    /// Unenrolls a device, dropping any session in flight, and bumps
    /// the [membership generation](FleetVerifier::membership_generation)
    /// so engines mid-round resolve the device as
    /// [`FleetError::Evicted`] on their next sweep. Returns whether the
    /// device was enrolled.
    pub fn remove(&self, id: DeviceId) -> bool {
        let removed = self.with_shard(id, |shard| shard.devices.remove(&id).is_some());
        if removed {
            self.churn_generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Replaces a device's key in place: a fresh verifier under `key`
    /// sharing the old spec allocation, challenge counter restarted,
    /// any in-flight session aborted (its challenge was MACed under the
    /// dead key and can only conclude as a rejection).
    ///
    /// The device stays enrolled throughout, so no membership
    /// generation bump: a round that challenged it before the rekey
    /// simply expires it at its deadline. Schedulers that want a
    /// cleaner story rekey between rounds — see
    /// [`FleetDirectory`](crate::FleetDirectory), which stages rekeys
    /// to epoch boundaries.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the id is not enrolled.
    pub fn rekey(&self, id: DeviceId, key: &[u8]) -> Result<(), FleetError> {
        self.with_shard(id, |shard| {
            let entry = shard
                .devices
                .get_mut(&id)
                .ok_or(FleetError::UnknownDevice(id))?;
            entry.verifier = entry.verifier.rekeyed(key);
            entry.in_flight = None;
            Ok(())
        })
    }

    /// The fleet-wide membership generation: bumped on every
    /// [`remove`](FleetVerifier::remove).
    /// [`RoundEngine::sync_membership`] compares this against the value
    /// it last saw to decide whether an eviction rescan is due.
    pub fn membership_generation(&self) -> u64 {
        self.churn_generation.load(Ordering::Acquire)
    }

    /// Number of enrolled devices. Holds the grow serialization lock so
    /// a concurrent [`grow_shards`](FleetVerifier::grow_shards) cannot
    /// move devices mid-sweep and double-count them.
    pub fn device_count(&self) -> usize {
        let _settled = self.grow_lock.lock().unwrap();
        self.shard_snapshot()
            .iter()
            .map(|s| s.lock().unwrap().devices.len())
            .sum()
    }

    /// True when `id` is enrolled.
    pub fn is_registered(&self, id: DeviceId) -> bool {
        self.with_shard(id, |shard| shard.devices.contains_key(&id))
    }

    /// True when `id` has a session awaiting evidence right now.
    pub fn session_pending(&self, id: DeviceId) -> bool {
        self.with_shard(id, |shard| {
            shard
                .devices
                .get(&id)
                .is_some_and(|e| e.in_flight.is_some())
        })
    }

    /// Number of sessions currently awaiting evidence, fleet-wide.
    /// Like [`device_count`](FleetVerifier::device_count), serialized
    /// against growth for an exact answer.
    pub fn in_flight(&self) -> usize {
        let _settled = self.grow_lock.lock().unwrap();
        self.shard_snapshot()
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .devices
                    .values()
                    .filter(|d| d.in_flight.is_some())
                    .count()
            })
            .sum()
    }

    /// Issues a fresh challenge to one device and returns the
    /// enveloped, wire-encoded request frame to deliver to it.
    ///
    /// If a session was already in flight for the device it is
    /// *replaced*: the old challenge becomes stale, and evidence bound
    /// to it will fail the new session's MAC check. (A verifier that
    /// re-challenges has, by definition, given up on the old round.)
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the id is not enrolled.
    pub fn begin(&self, id: DeviceId) -> Result<Vec<u8>, FleetError> {
        self.with_shard(id, |shard| {
            let entry = shard
                .devices
                .get_mut(&id)
                .ok_or(FleetError::UnknownDevice(id))?;
            let session = entry.verifier.begin();
            let frame = Envelope::wrap(id.0, session.request_bytes()).to_bytes();
            entry.in_flight = Some(session);
            Ok(frame)
        })
    }

    /// Issues one challenge per device and returns the request frames,
    /// in input order. A device listed more than once is challenged
    /// once, at its first occurrence — issuing twice would silently
    /// stale the first challenge and turn an honest device's evidence
    /// into a `BadMac` rejection.
    ///
    /// All-or-nothing: ids are validated up front, so an unknown device
    /// fails the call before any challenge is issued and the registry
    /// is left untouched.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] naming the first unknown id.
    pub fn begin_round(&self, ids: &[DeviceId]) -> Result<Vec<(DeviceId, Vec<u8>)>, FleetError> {
        if let Some(&id) = ids.iter().find(|&&id| !self.is_registered(id)) {
            return Err(FleetError::UnknownDevice(id));
        }
        let mut seen = std::collections::HashSet::new();
        ids.iter()
            .filter(|&&id| seen.insert(id))
            .map(|&id| Ok((id, self.begin(id)?)))
            .collect()
    }

    /// [`begin_round`](FleetVerifier::begin_round), arena-packed: the
    /// request frames are appended end-to-end into `arena` and
    /// described by returned `(device, start, len)` spans, so a round
    /// over a large cohort holds **one** transmit allocation instead of
    /// one `Vec` per challenge. This is what
    /// [`RoundEngine::begin`](crate::RoundEngine::begin) queues from.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] naming the first unknown id; the
    /// arena is left untouched in that case.
    pub fn begin_round_packed(
        &self,
        ids: &[DeviceId],
        arena: &mut Vec<u8>,
    ) -> Result<Vec<(DeviceId, u32, u32)>, FleetError> {
        if let Some(&id) = ids.iter().find(|&&id| !self.is_registered(id)) {
            return Err(FleetError::UnknownDevice(id));
        }
        let mut seen = std::collections::HashSet::new();
        let mut spans = Vec::new();
        for &id in ids.iter().filter(|&&id| seen.insert(id)) {
            let frame = self.begin(id)?;
            let start = u32::try_from(arena.len()).expect("transmit arena stays under 4 GiB");
            let len = u32::try_from(frame.len()).expect("challenge frames are small");
            arena.extend_from_slice(&frame);
            spans.push((id, start, len));
        }
        Ok(spans)
    }

    /// Absorbs one enveloped response frame and concludes the session
    /// it answers.
    ///
    /// Returns the device the frame was attributed to (when the
    /// envelope decoded) and the per-device verdict. The shard lock is
    /// held only while the session is popped; MAC verification runs on
    /// a clone of the device's verifier outside all locks.
    pub fn conclude(&self, frame: &[u8]) -> Verdict {
        let envelope = match Envelope::from_bytes(frame) {
            Ok(e) => e,
            Err(e) => return (None, Err(FleetError::Frame(e))),
        };
        let id = DeviceId(envelope.device_id);

        let popped = self.with_shard(id, |shard| {
            let Some(entry) = shard.devices.get_mut(&id) else {
                return Err(FleetError::UnknownDevice(id));
            };
            let Some(session) = entry.in_flight.take() else {
                return Err(FleetError::NoSession(id));
            };
            Ok((entry.verifier.clone(), session))
        });
        let (verifier, session) = match popped {
            Ok(pair) => pair,
            Err(e) => return (Some(id), Err(e)),
        };

        let result = session
            .evidence_bytes(&envelope.payload)
            .map_err(FleetError::Rejected)
            .and_then(|s| {
                s.conclude(&verifier)
                    .into_result()
                    .map_err(FleetError::Rejected)
            });
        (Some(id), result)
    }

    /// Concludes a whole batch of response frames, MAC verification
    /// fanned out onto a [`std::thread::scope`] worker pool when the
    /// batch is large enough to pay for the threads. Results come back
    /// in **input order**, so callers can feed them to
    /// [`RoundEngine::outcome_received`] and get the same report a
    /// serial conclusion would have produced.
    ///
    /// This is where the sharded registry earns its sharding: each
    /// worker's [`conclude`](FleetVerifier::conclude) holds a shard
    /// lock only for the session pop, and the MAC recomputation — the
    /// actual work — runs outside all locks, so workers on devices in
    /// different shards never contend.
    ///
    /// Duplicates are resolved deterministically: when a batch carries
    /// *several* frames for the same device, the **first frame in input
    /// order** contends for the in-flight session, and every later one
    /// settles as [`FleetError::NoSession`] — exactly what a serial
    /// pass over the batch would produce, regardless of how the pool
    /// schedules its workers.
    ///
    /// The worker count follows [`parallelism`](FleetVerifier::parallelism)
    /// (all available cores unless capped with
    /// [`set_parallelism`](FleetVerifier::set_parallelism)). When a
    /// [`FleetRuntime`](crate::FleetRuntime) pool is attached, the
    /// batch dispatches to those persistent workers instead of spawning
    /// a scoped pool — one frame-buffer copy buys out the per-batch
    /// thread spawn/join tax.
    pub fn conclude_batch(&self, frames: &[Vec<u8>]) -> Vec<Verdict> {
        if self.has_conclude_pool() {
            let (verdicts, _) = self.conclude_batch_pooled(frames.to_vec(), self.parallelism());
            return verdicts;
        }
        self.conclude_batch_with(frames, self.parallelism())
    }

    /// [`conclude_batch`](FleetVerifier::conclude_batch) with an
    /// explicit worker cap, for callers that already own some of the
    /// machine — a [`MultiGateway`](crate::MultiGateway) reactor
    /// concludes with `parallelism / reactors` workers so the reactors'
    /// pools together never oversubscribe the cores.
    pub fn conclude_batch_with(&self, frames: &[Vec<u8>], workers: usize) -> Vec<Verdict> {
        /// Below this, thread spawn/join costs more than it buys.
        const PARALLEL_MIN: usize = 32;

        if frames.len() < PARALLEL_MIN || workers < 2 {
            return frames.iter().map(|f| self.conclude(f)).collect();
        }

        // Only the *first* frame per device (in input order) races on
        // the pool; repeats are deferred. Undecodable frames carry no
        // device id and cannot collide, so they pool freely.
        let mut seen = HashSet::new();
        let mut pooled: Vec<usize> = Vec::with_capacity(frames.len());
        let mut deferred: Vec<usize> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            match Envelope::from_bytes(frame) {
                Ok(e) if !seen.insert(DeviceId(e.device_id)) => deferred.push(i),
                _ => pooled.push(i),
            }
        }

        let mut results: Vec<Option<Verdict>> = frames.iter().map(|_| None).collect();
        let per_worker = Self::chunk_len(pooled.len(), workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pooled
                .chunks(per_worker)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&i| (i, self.conclude(&frames[i])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("conclude worker never panics") {
                    results[i] = Some(result);
                }
            }
        });
        // The pool has drained, so each device's first frame has
        // already settled its session; these repeats now observe what
        // a serial pass would — `NoSession` (or `UnknownDevice`).
        for i in deferred {
            results[i] = Some(self.conclude(&frames[i]));
        }
        results
            .into_iter()
            .map(|r| r.expect("every input index concluded exactly once"))
            .collect()
    }

    /// Frames per pool worker: the batch split as evenly as possible
    /// across `workers` chunks. Never zero, and — unlike the old
    /// hard-wired `workers.min(8)` — never capped below the requested
    /// width, so `chunks(chunk_len(n, w))` yields `min(w, n)` chunks.
    fn chunk_len(frames: usize, workers: usize) -> usize {
        frames.div_ceil(workers.max(1)).max(1)
    }

    /// Attaches a long-lived MAC-conclusion worker pool:
    /// [`conclude_batch_pooled`](FleetVerifier::conclude_batch_pooled)
    /// will dispatch to `tx` instead of spawning a scoped pool per
    /// batch. `me` must be a weak handle to the very `Arc` wrapping
    /// this registry — jobs carry an upgraded clone so workers can
    /// conclude against it without borrowing. Called by
    /// [`FleetRuntime`](crate::FleetRuntime) at construction.
    pub(crate) fn attach_conclude_pool(
        &self,
        tx: Sender<ConcludeJob>,
        me: Weak<FleetVerifier>,
        workers: usize,
    ) {
        *self.pool.lock().unwrap() = Some(AttachedPool { tx, me, workers });
    }

    /// Detaches the runtime pool; subsequent batches fall back to the
    /// scoped pool. Called before the runtime shuts its workers down so
    /// no batch can race a dying pool.
    pub(crate) fn detach_conclude_pool(&self) {
        *self.pool.lock().unwrap() = None;
    }

    /// True when a [`FleetRuntime`](crate::FleetRuntime) pool is
    /// currently attached.
    pub fn has_conclude_pool(&self) -> bool {
        self.pool.lock().unwrap().is_some()
    }

    /// [`conclude_batch_with`](FleetVerifier::conclude_batch_with) over
    /// an **owned** batch, routed through the attached runtime pool
    /// when one exists. Returns the verdicts (input order, duplicate
    /// resolution identical to the scoped path) plus the frame buffer
    /// back, **cleared**, so a reactor can reuse its inbound `Vec`
    /// across rounds instead of reallocating.
    ///
    /// The dispatch threshold is lower than the scoped pool's 32: a
    /// persistent pool costs two channel hops (~a few µs) instead of a
    /// thread spawn/join (~tens of µs), so fanning out pays for itself
    /// at about a quarter the batch size. Batches under the threshold,
    /// single-worker calls, and standalone registries (no pool
    /// attached) all take the existing scoped/serial path.
    pub fn conclude_batch_pooled(
        &self,
        frames: Vec<Vec<u8>>,
        workers: usize,
    ) -> (Vec<Verdict>, Vec<Vec<u8>>) {
        /// Pool-dispatch floor: two mpsc hops per chunk amortize over
        /// ~8 MAC recomputations, versus ~32 for a spawned thread.
        const POOLED_MIN: usize = 8;

        let pool = {
            let pool = self.pool.lock().unwrap();
            pool.as_ref()
                .and_then(|p| p.me.upgrade().map(|me| (p.tx.clone(), me, p.workers)))
        };
        let Some((tx, me, pool_workers)) = pool else {
            let verdicts = self.conclude_batch_with(&frames, workers);
            return (verdicts, recycled(frames));
        };
        let lanes = workers.min(pool_workers);
        if frames.len() < POOLED_MIN || lanes < 2 {
            let verdicts = self.conclude_batch_with(&frames, workers);
            return (verdicts, recycled(frames));
        }

        // Same duplicate discipline as the scoped pool: first frame per
        // device races, repeats are deferred until the pool drains.
        let mut seen = HashSet::new();
        let mut pooled: Vec<usize> = Vec::with_capacity(frames.len());
        let mut deferred: Vec<usize> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            match Envelope::from_bytes(frame) {
                Ok(e) if !seen.insert(DeviceId(e.device_id)) => deferred.push(i),
                _ => pooled.push(i),
            }
        }

        let mut results: Vec<Option<Verdict>> = frames.iter().map(|_| None).collect();
        let frames = Arc::new(frames);
        let per_lane = Self::chunk_len(pooled.len(), lanes);
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut outstanding = 0usize;
        for chunk in pooled.chunks(per_lane) {
            tx.send(ConcludeJob {
                fleet: Arc::clone(&me),
                frames: Arc::clone(&frames),
                indices: chunk.to_vec(),
                reply: reply_tx.clone(),
            })
            .expect("runtime pool outlives every attached batch");
            outstanding += 1;
        }
        drop(reply_tx);
        for _ in 0..outstanding {
            let batch = reply_rx
                .recv()
                .expect("pool workers always reply before exiting");
            for (i, verdict) in batch {
                results[i] = Some(verdict);
            }
        }
        for i in deferred {
            results[i] = Some(self.conclude(&frames[i]));
        }
        let verdicts = results
            .into_iter()
            .map(|r| r.expect("every input index concluded exactly once"))
            .collect();
        // Workers drop their `Arc` clones before replying, so by now we
        // hold the only reference and get the buffer back for reuse; if
        // the unwrap ever loses the race, a fresh Vec merely costs the
        // caller its recycled capacity.
        let frames = Arc::try_unwrap(frames).map_or_else(|_| Vec::new(), recycled);
        (verdicts, frames)
    }

    /// Concludes a whole round: absorbs every response frame, then
    /// charges [`FleetError::NoResponse`] to each challenged device
    /// whose session is still dangling — aborting it, so the registry
    /// ends the round with zero sessions in flight for `challenged`.
    ///
    /// Per-device isolation: a frame that fails to decode, or evidence
    /// that fails its check, yields a rejected outcome for that device
    /// only; every other frame in the round is still judged.
    ///
    /// A thin lock-step driver over [`RoundEngine`]: the frames are
    /// concluded as one [`conclude_batch`](FleetVerifier::conclude_batch)
    /// (so large rounds verify MACs on the worker pool), their verdicts
    /// injected in frame order, and one tick at the lock-step deadline
    /// settles the silent devices.
    pub fn conclude_round(&self, challenged: &[DeviceId], frames: &[Vec<u8>]) -> RoundReport {
        let mut engine = RoundEngine::resume(self, challenged, RoundConfig::lockstep());
        for (device, result) in self.conclude_batch(frames) {
            engine.outcome_received(device, result);
        }
        engine.tick(engine.now());
        engine.into_report()
    }

    /// Drops the in-flight session for `id`, if any. Returns whether a
    /// session was actually aborted.
    pub fn abort(&self, id: DeviceId) -> bool {
        self.with_shard(id, |shard| {
            shard
                .devices
                .get_mut(&id)
                .and_then(|e| e.in_flight.take())
                .is_some()
        })
    }

    /// Drives one full lock-step round over a [`Transport`]:
    /// challenges every device in `ids`, pumps every request frame out
    /// and every immediately-available response frame back in, and
    /// settles. Devices whose response is not available by then are
    /// reported as [`FleetError::NoResponse`].
    ///
    /// This is the zero-latency driver over [`RoundEngine`] — right
    /// for [`Loopback`](crate::Loopback), where responses appear the
    /// moment a request is sent. A transport with real latency wants
    /// [`drive_round`](crate::stream::drive_round) (a response budget
    /// mapped onto engine ticks) or a hand-rolled engine loop.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued in that case).
    pub fn run_round<T: Transport + ?Sized>(
        &self,
        ids: &[DeviceId],
        transport: &mut T,
    ) -> Result<RoundReport, FleetError> {
        let mut engine = RoundEngine::begin(self, ids, RoundConfig::lockstep())?;
        while let Some((device, frame)) = engine.poll_transmit() {
            transport.send(device, &frame);
        }
        while let Some(frame) = transport.try_recv() {
            engine.frame_received(&frame);
        }
        engine.tick(engine.now());
        Ok(engine.into_report())
    }

    /// Drives one full round through a [`FleetGateway`]: challenges
    /// every device in `ids`, lets the gateway route each request to
    /// whichever connection its device announced itself on, and maps
    /// the wall-clock `budget` onto engine ticks — exactly
    /// [`drive_round`](crate::stream::drive_round)'s contract, but over
    /// *many* concurrent prover connections instead of one stream.
    /// Inbound frames are concluded via
    /// [`conclude_batch`](FleetVerifier::conclude_batch), so a busy
    /// sweep verifies MACs on the scoped worker pool.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued in that case).
    pub fn run_round_gateway<L: GatewayListener>(
        &self,
        ids: &[DeviceId],
        gateway: &mut FleetGateway<L>,
        budget: std::time::Duration,
    ) -> Result<RoundReport, FleetError> {
        gateway.drive_round(self, ids, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks_of(frames: usize, workers: usize) -> usize {
        if frames == 0 {
            return 0;
        }
        frames.div_ceil(FleetVerifier::chunk_len(frames, workers))
    }

    #[test]
    fn chunking_uses_every_requested_worker() {
        // The regression: `workers.min(8)` used to split 64 frames on
        // a 16-way box into 8 chunks of 8 — half the pool idle.
        assert_eq!(FleetVerifier::chunk_len(64, 16), 4);
        assert_eq!(chunks_of(64, 16), 16);
        assert_eq!(chunks_of(1024, 32), 32);
    }

    #[test]
    fn chunking_never_yields_empty_or_excess_chunks() {
        for frames in [1, 2, 31, 32, 33, 64, 100, 1000] {
            for workers in [1, 2, 7, 8, 9, 16, 64, 1000] {
                let len = FleetVerifier::chunk_len(frames, workers);
                assert!(len >= 1, "chunks must be non-empty");
                let chunks = chunks_of(frames, workers);
                assert!(
                    chunks <= workers.min(frames),
                    "never more chunks than workers"
                );
                // No hard-wired cap (the old `workers.min(8)`): with
                // enough frames to feed the pool, ceil-chunking keeps
                // at least half the requested workers busy, however
                // wide the pool.
                if frames >= workers {
                    assert!(
                        chunks * 2 >= workers,
                        "{frames} frames / {workers} workers → {chunks}"
                    );
                }
            }
        }
        // Degenerate inputs stay sane rather than dividing by zero.
        assert_eq!(FleetVerifier::chunk_len(0, 8), 1);
        assert_eq!(FleetVerifier::chunk_len(5, 0), 5);
    }

    #[test]
    fn parallelism_knob_round_trips_and_zero_means_auto() {
        let fleet = FleetVerifier::new();
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(fleet.parallelism(), auto);
        fleet.set_parallelism(3);
        assert_eq!(fleet.parallelism(), 3);
        fleet.set_parallelism(0);
        assert_eq!(fleet.parallelism(), auto);
    }

    #[test]
    fn reactor_affinity_partitions_shards() {
        // Every device lands on exactly one reactor, and that reactor
        // is a pure function of its registry shard — whatever shard
        // count the fleet was constructed with.
        for shards in [1, 4, SHARD_COUNT, 64] {
            let fleet = FleetVerifier::with_shards(shards);
            assert_eq!(fleet.shard_count(), shards);
            for reactors in 1..=4 {
                for id in 0..1000 {
                    let id = DeviceId(id);
                    let r = fleet.reactor_of(id, reactors);
                    assert!(r < reactors);
                    assert_eq!(r, fleet.shard_of(id) % reactors);
                    assert_eq!(fleet.shard_of(id), FleetVerifier::shard_in(id, shards));
                }
            }
            // One reactor owns everything.
            assert!((0..1000).all(|id| fleet.reactor_of(DeviceId(id), 1) == 0));
        }
    }

    #[test]
    fn default_shard_count_is_pinned() {
        // The default fleet keeps the historical 16-shard layout, so
        // shard/reactor affinity of existing deployments is unchanged.
        let fleet = FleetVerifier::new();
        assert_eq!(fleet.shard_count(), SHARD_COUNT);
        for id in 0..1000 {
            let id = DeviceId(id);
            assert_eq!(fleet.shard_of(id), FleetVerifier::shard_in(id, SHARD_COUNT));
        }
    }

    #[test]
    fn with_shards_clamps_zero_to_one() {
        let fleet = FleetVerifier::with_shards(0);
        assert_eq!(fleet.shard_count(), 1);
        assert_eq!(fleet.shard_of(DeviceId(7)), 0);
    }

    #[test]
    fn remove_bumps_generation_and_drops_sessions() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = VerifierSpec::from_image(&image).unwrap();
        let fleet = FleetVerifier::with_shards(4);
        let id = DeviceId(9);
        fleet.register(id, b"k", spec).unwrap();
        fleet.begin(id).unwrap();
        assert!(fleet.session_pending(id));
        let before = fleet.membership_generation();

        assert!(fleet.remove(id));
        assert_eq!(fleet.membership_generation(), before + 1);
        assert!(!fleet.is_registered(id));
        assert_eq!(fleet.in_flight(), 0);
        // Removing an unknown id is a no-op, generation included.
        assert!(!fleet.remove(id));
        assert_eq!(fleet.membership_generation(), before + 1);
    }

    #[test]
    fn grow_doubles_and_preserves_membership_and_sessions() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = Arc::new(VerifierSpec::from_image(&image).unwrap());
        let fleet = FleetVerifier::with_shards(4);
        for id in 0..64 {
            fleet
                .register_shared(DeviceId(id), b"k", Arc::clone(&spec))
                .unwrap();
        }
        // Half the fleet mid-round when the table doubles.
        let challenged: Vec<DeviceId> = (0..32).map(DeviceId).collect();
        let frames = fleet.begin_round(&challenged).unwrap();
        let generation = fleet.membership_generation();

        assert_eq!(fleet.grow_shards(), 8);
        assert_eq!(fleet.shard_count(), 8);
        assert_eq!(fleet.grow_shards(), 16);

        // Growth is not churn, loses no device and aborts no session.
        assert_eq!(fleet.membership_generation(), generation);
        assert_eq!(fleet.device_count(), 64);
        assert_eq!(fleet.in_flight(), 32);
        for id in 0..64 {
            let id = DeviceId(id);
            assert!(fleet.is_registered(id));
            assert_eq!(fleet.shard_of(id), FleetVerifier::shard_in(id, 16));
            assert!(fleet.shard_of(id) < fleet.shard_count());
        }
        // The pre-growth challenges still conclude: sessions migrated
        // shards with their devices. (No device answered, so a second
        // begin_round replaces them — proving lookups still resolve.)
        assert_eq!(frames.len(), 32);
        for &id in &challenged {
            assert!(fleet.session_pending(id));
            fleet.begin(id).unwrap();
        }
    }

    #[test]
    fn grow_preserves_doubling_residues() {
        // The split invariant: doubling maps shard `s` into exactly
        // `{s, s + base}`, whatever the starting count (power of two or
        // not), so each split touches two shard locks and no more.
        for base in [1usize, 3, 4, 5, 16] {
            for id in 0..1000u64 {
                let id = DeviceId(id);
                let old = FleetVerifier::shard_in(id, base);
                let new = FleetVerifier::shard_in(id, base * 2);
                assert!(new == old || new == old + base, "{base}: {old} -> {new}");
            }
        }
    }

    #[test]
    fn pooled_batch_without_runtime_falls_back_to_scoped() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = Arc::new(VerifierSpec::from_image(&image).unwrap());
        let fleet = FleetVerifier::new();
        assert!(!fleet.has_conclude_pool());
        for id in 0..4 {
            fleet
                .register_shared(DeviceId(id), b"k", Arc::clone(&spec))
                .unwrap();
        }
        let frames: Vec<Vec<u8>> = (0..4)
            .map(|id| fleet.begin(DeviceId(id)).unwrap())
            .collect();
        // Challenge frames are not evidence: every verdict is a
        // rejection, but each is *attributed* and the buffer comes back
        // cleared with its capacity intact.
        let capacity = frames.capacity();
        let (verdicts, recycled) = fleet.conclude_batch_pooled(frames, 4);
        assert_eq!(verdicts.len(), 4);
        for (i, (device, outcome)) in verdicts.iter().enumerate() {
            assert_eq!(*device, Some(DeviceId(i as u64)));
            assert!(outcome.is_err());
        }
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), capacity);
    }

    #[test]
    fn rekey_restarts_the_counter_and_aborts_in_flight() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = VerifierSpec::from_image(&image).unwrap();
        let fleet = FleetVerifier::new();
        let id = DeviceId(3);
        fleet.register(id, b"old", spec).unwrap();
        fleet.begin(id).unwrap();

        let generation = fleet.membership_generation();
        fleet.rekey(id, b"new").unwrap();
        assert!(!fleet.session_pending(id), "stale challenge aborted");
        assert!(fleet.is_registered(id));
        assert_eq!(
            fleet.membership_generation(),
            generation,
            "rekey is not an eviction"
        );
        assert_eq!(
            fleet.rekey(DeviceId(99), b"x"),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
    }
}
