//! The sharded fleet verifier: many per-device [`AsapVerifier`]s behind
//! an array of independently locked shards.
//!
//! Scale shape: challenge issuance and evidence conclusion are hash-map
//! operations plus (for conclusion) a MAC recomputation. The registry
//! keeps the *map operations* under per-shard mutexes — a shard array
//! sized at construction ([`FleetVerifier::with_shards`], default
//! [`SHARD_COUNT`]), shard picked by a multiplicative hash of the
//! device id — and performs the MAC work on a clone of the device's
//! verifier *outside* any lock. Two sessions on devices in different
//! shards therefore never contend at all, and even same-shard devices
//! only serialize the cheap map lookups, not the crypto.
//!
//! Membership can churn while rounds are in flight:
//! [`remove`](FleetVerifier::remove) bumps a fleet-wide *membership
//! generation* that [`RoundEngine::sync_membership`] watches, so an
//! evicted device's round resolves deterministically as
//! [`FleetError::Evicted`] instead of dangling to its deadline.

use crate::engine::{RoundConfig, RoundEngine};
use crate::error::FleetError;
use crate::gateway::{FleetGateway, GatewayListener};
use crate::round::RoundReport;
use crate::transport::Transport;
use crate::DeviceId;
use apex_pox::wire::Envelope;
use asap::session::{Issued, PoxSession};
use asap::{AsapVerifier, Attested, VerifierSpec};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of registry shards
/// ([`FleetVerifier::new`]; override with
/// [`FleetVerifier::with_shards`]). Whatever the count, it is fixed at
/// construction: shard selection is a pure function of the device id
/// and the count, so no resize coordination is ever needed.
pub const SHARD_COUNT: usize = 16;

/// One concluded frame: the device it was attributed to (when the
/// envelope decoded) and the per-device verdict.
pub type Verdict = (Option<DeviceId>, Result<Attested, FleetError>);

/// One enrolled device: its verifier (key + spec + challenge counter)
/// and the session in flight, if any.
struct DeviceEntry {
    verifier: AsapVerifier,
    in_flight: Option<PoxSession<Issued>>,
}

#[derive(Default)]
struct Shard {
    devices: HashMap<DeviceId, DeviceEntry>,
}

/// A verifier for a whole fleet of provers, keyed by [`DeviceId`].
///
/// All methods take `&self`: the registry is internally synchronized
/// and meant to be shared across verifier threads (`FleetVerifier` is
/// `Send + Sync`). See the [module docs](self) for the locking story,
/// and [`crate`] docs for a full loopback walk-through.
pub struct FleetVerifier {
    shards: Box<[Mutex<Shard>]>,
    /// Worker cap for [`conclude_batch`](FleetVerifier::conclude_batch);
    /// `0` means "follow [`std::thread::available_parallelism`]".
    conclude_workers: AtomicUsize,
    /// Bumped on every [`remove`](FleetVerifier::remove):
    /// [`RoundEngine::sync_membership`] rescans its awaited devices only
    /// when this moved, so churn detection is one atomic load per sweep
    /// in the steady state.
    churn_generation: AtomicU64,
}

impl Default for FleetVerifier {
    fn default() -> FleetVerifier {
        FleetVerifier::new()
    }
}

impl FleetVerifier {
    /// An empty fleet over the default [`SHARD_COUNT`] shards.
    pub fn new() -> FleetVerifier {
        FleetVerifier::with_shards(SHARD_COUNT)
    }

    /// An empty fleet over `shards` lock shards (clamped to at least
    /// one). More shards mean less lock contention for wide conclude
    /// pools and many-reactor gateways; each shard is one mutex plus
    /// one hash map, so a million-device fleet can afford hundreds.
    pub fn with_shards(shards: usize) -> FleetVerifier {
        FleetVerifier {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            conclude_workers: AtomicUsize::new(0),
            churn_generation: AtomicU64::new(0),
        }
    }

    /// Number of lock shards this registry was constructed with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which of `shards` shards holds `id` — the pure hash both
    /// [`shard_of`](FleetVerifier::shard_of) and external partitioners
    /// compute. Every caller agreeing on `shards` computes the same
    /// answer with no coordination.
    pub fn shard_in(id: DeviceId, shards: usize) -> usize {
        // Fibonacci hashing: spreads dense (0, 1, 2, …) id assignments
        // across shards instead of clustering them modulo the count.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % shards.max(1)
    }

    /// Which registry shard holds `id` in *this* fleet —
    /// [`shard_in`](FleetVerifier::shard_in) over the constructed shard
    /// count.
    pub fn shard_of(&self, id: DeviceId) -> usize {
        Self::shard_in(id, self.shards.len())
    }

    /// Which of `reactors` reactor threads owns `id`'s round state in a
    /// multi-reactor gateway ([`MultiGateway`](crate::MultiGateway)).
    ///
    /// Affinity rides the shard hash: reactor `r` owns exactly the
    /// shards `s` with `s % reactors == r`, so the devices one reactor
    /// concludes live in a disjoint set of registry shards from every
    /// other reactor's — their `conclude` calls never touch the same
    /// shard lock. (With `reactors > shard_count` the surplus reactors
    /// own no devices; they still service connections.)
    ///
    /// # Panics
    ///
    /// When `reactors` is zero.
    pub fn reactor_of(&self, id: DeviceId, reactors: usize) -> usize {
        assert!(reactors > 0, "a gateway needs at least one reactor");
        self.shard_of(id) % reactors
    }

    fn shard(&self, id: DeviceId) -> &Mutex<Shard> {
        &self.shards[self.shard_of(id)]
    }

    /// Caps the [`conclude_batch`](FleetVerifier::conclude_batch)
    /// worker pool at `workers` threads; `0` restores the default of
    /// following [`std::thread::available_parallelism`]. Shared with
    /// the reactor count by [`MultiGateway`](crate::MultiGateway):
    /// each reactor concludes with `parallelism / reactors` workers so
    /// reactors and MAC workers together never oversubscribe the
    /// machine.
    pub fn set_parallelism(&self, workers: usize) {
        self.conclude_workers.store(workers, Ordering::Relaxed);
    }

    /// The effective [`conclude_batch`](FleetVerifier::conclude_batch)
    /// worker cap: the configured knob, or
    /// [`std::thread::available_parallelism`] when unset.
    pub fn parallelism(&self) -> usize {
        match self.conclude_workers.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            n => n,
        }
    }

    /// Enrolls a device under its shared key and image-derived spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateDevice`] when the id is already enrolled.
    pub fn register(&self, id: DeviceId, key: &[u8], spec: VerifierSpec) -> Result<(), FleetError> {
        self.register_shared(id, key, Arc::new(spec))
    }

    /// [`register`](FleetVerifier::register) over an already-shared
    /// spec: every device enrolled from the same `Arc` shares one copy
    /// of the expected `ER` bytes. This is the memory diet for large
    /// fleets — a million devices of one image hold a million keys but
    /// a single spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateDevice`] when the id is already enrolled.
    pub fn register_shared(
        &self,
        id: DeviceId,
        key: &[u8],
        spec: Arc<VerifierSpec>,
    ) -> Result<(), FleetError> {
        let mut shard = self.shard(id).lock().unwrap();
        if shard.devices.contains_key(&id) {
            return Err(FleetError::DuplicateDevice(id));
        }
        shard.devices.insert(
            id,
            DeviceEntry {
                verifier: AsapVerifier::new_shared(key, spec),
                in_flight: None,
            },
        );
        Ok(())
    }

    /// Unenrolls a device, dropping any session in flight, and bumps
    /// the [membership generation](FleetVerifier::membership_generation)
    /// so engines mid-round resolve the device as
    /// [`FleetError::Evicted`] on their next sweep. Returns whether the
    /// device was enrolled.
    pub fn remove(&self, id: DeviceId) -> bool {
        let removed = self.shard(id).lock().unwrap().devices.remove(&id).is_some();
        if removed {
            self.churn_generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Replaces a device's key in place: a fresh verifier under `key`
    /// sharing the old spec allocation, challenge counter restarted,
    /// any in-flight session aborted (its challenge was MACed under the
    /// dead key and can only conclude as a rejection).
    ///
    /// The device stays enrolled throughout, so no membership
    /// generation bump: a round that challenged it before the rekey
    /// simply expires it at its deadline. Schedulers that want a
    /// cleaner story rekey between rounds — see
    /// [`FleetDirectory`](crate::FleetDirectory), which stages rekeys
    /// to epoch boundaries.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the id is not enrolled.
    pub fn rekey(&self, id: DeviceId, key: &[u8]) -> Result<(), FleetError> {
        let mut shard = self.shard(id).lock().unwrap();
        let entry = shard
            .devices
            .get_mut(&id)
            .ok_or(FleetError::UnknownDevice(id))?;
        entry.verifier = entry.verifier.rekeyed(key);
        entry.in_flight = None;
        Ok(())
    }

    /// The fleet-wide membership generation: bumped on every
    /// [`remove`](FleetVerifier::remove).
    /// [`RoundEngine::sync_membership`] compares this against the value
    /// it last saw to decide whether an eviction rescan is due.
    pub fn membership_generation(&self) -> u64 {
        self.churn_generation.load(Ordering::Acquire)
    }

    /// Number of enrolled devices.
    pub fn device_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().devices.len())
            .sum()
    }

    /// True when `id` is enrolled.
    pub fn is_registered(&self, id: DeviceId) -> bool {
        self.shard(id).lock().unwrap().devices.contains_key(&id)
    }

    /// True when `id` has a session awaiting evidence right now.
    pub fn session_pending(&self, id: DeviceId) -> bool {
        self.shard(id)
            .lock()
            .unwrap()
            .devices
            .get(&id)
            .is_some_and(|e| e.in_flight.is_some())
    }

    /// Number of sessions currently awaiting evidence, fleet-wide.
    pub fn in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .devices
                    .values()
                    .filter(|d| d.in_flight.is_some())
                    .count()
            })
            .sum()
    }

    /// Issues a fresh challenge to one device and returns the
    /// enveloped, wire-encoded request frame to deliver to it.
    ///
    /// If a session was already in flight for the device it is
    /// *replaced*: the old challenge becomes stale, and evidence bound
    /// to it will fail the new session's MAC check. (A verifier that
    /// re-challenges has, by definition, given up on the old round.)
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the id is not enrolled.
    pub fn begin(&self, id: DeviceId) -> Result<Vec<u8>, FleetError> {
        let mut shard = self.shard(id).lock().unwrap();
        let entry = shard
            .devices
            .get_mut(&id)
            .ok_or(FleetError::UnknownDevice(id))?;
        let session = entry.verifier.begin();
        let frame = Envelope::wrap(id.0, session.request_bytes()).to_bytes();
        entry.in_flight = Some(session);
        Ok(frame)
    }

    /// Issues one challenge per device and returns the request frames,
    /// in input order. A device listed more than once is challenged
    /// once, at its first occurrence — issuing twice would silently
    /// stale the first challenge and turn an honest device's evidence
    /// into a `BadMac` rejection.
    ///
    /// All-or-nothing: ids are validated up front, so an unknown device
    /// fails the call before any challenge is issued and the registry
    /// is left untouched.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] naming the first unknown id.
    pub fn begin_round(&self, ids: &[DeviceId]) -> Result<Vec<(DeviceId, Vec<u8>)>, FleetError> {
        if let Some(&id) = ids.iter().find(|&&id| !self.is_registered(id)) {
            return Err(FleetError::UnknownDevice(id));
        }
        let mut seen = std::collections::HashSet::new();
        ids.iter()
            .filter(|&&id| seen.insert(id))
            .map(|&id| Ok((id, self.begin(id)?)))
            .collect()
    }

    /// [`begin_round`](FleetVerifier::begin_round), arena-packed: the
    /// request frames are appended end-to-end into `arena` and
    /// described by returned `(device, start, len)` spans, so a round
    /// over a large cohort holds **one** transmit allocation instead of
    /// one `Vec` per challenge. This is what
    /// [`RoundEngine::begin`](crate::RoundEngine::begin) queues from.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] naming the first unknown id; the
    /// arena is left untouched in that case.
    pub fn begin_round_packed(
        &self,
        ids: &[DeviceId],
        arena: &mut Vec<u8>,
    ) -> Result<Vec<(DeviceId, u32, u32)>, FleetError> {
        if let Some(&id) = ids.iter().find(|&&id| !self.is_registered(id)) {
            return Err(FleetError::UnknownDevice(id));
        }
        let mut seen = std::collections::HashSet::new();
        let mut spans = Vec::new();
        for &id in ids.iter().filter(|&&id| seen.insert(id)) {
            let frame = self.begin(id)?;
            let start = u32::try_from(arena.len()).expect("transmit arena stays under 4 GiB");
            let len = u32::try_from(frame.len()).expect("challenge frames are small");
            arena.extend_from_slice(&frame);
            spans.push((id, start, len));
        }
        Ok(spans)
    }

    /// Absorbs one enveloped response frame and concludes the session
    /// it answers.
    ///
    /// Returns the device the frame was attributed to (when the
    /// envelope decoded) and the per-device verdict. The shard lock is
    /// held only while the session is popped; MAC verification runs on
    /// a clone of the device's verifier outside all locks.
    pub fn conclude(&self, frame: &[u8]) -> Verdict {
        let envelope = match Envelope::from_bytes(frame) {
            Ok(e) => e,
            Err(e) => return (None, Err(FleetError::Frame(e))),
        };
        let id = DeviceId(envelope.device_id);

        let (verifier, session) = {
            let mut shard = self.shard(id).lock().unwrap();
            let Some(entry) = shard.devices.get_mut(&id) else {
                return (Some(id), Err(FleetError::UnknownDevice(id)));
            };
            let Some(session) = entry.in_flight.take() else {
                return (Some(id), Err(FleetError::NoSession(id)));
            };
            (entry.verifier.clone(), session)
        };

        let result = session
            .evidence_bytes(&envelope.payload)
            .map_err(FleetError::Rejected)
            .and_then(|s| {
                s.conclude(&verifier)
                    .into_result()
                    .map_err(FleetError::Rejected)
            });
        (Some(id), result)
    }

    /// Concludes a whole batch of response frames, MAC verification
    /// fanned out onto a [`std::thread::scope`] worker pool when the
    /// batch is large enough to pay for the threads. Results come back
    /// in **input order**, so callers can feed them to
    /// [`RoundEngine::outcome_received`] and get the same report a
    /// serial conclusion would have produced.
    ///
    /// This is where the sharded registry earns its sharding: each
    /// worker's [`conclude`](FleetVerifier::conclude) holds a shard
    /// lock only for the session pop, and the MAC recomputation — the
    /// actual work — runs outside all locks, so workers on devices in
    /// different shards never contend.
    ///
    /// Duplicates are resolved deterministically: when a batch carries
    /// *several* frames for the same device, the **first frame in input
    /// order** contends for the in-flight session, and every later one
    /// settles as [`FleetError::NoSession`] — exactly what a serial
    /// pass over the batch would produce, regardless of how the pool
    /// schedules its workers.
    ///
    /// The worker count follows [`parallelism`](FleetVerifier::parallelism)
    /// (all available cores unless capped with
    /// [`set_parallelism`](FleetVerifier::set_parallelism)).
    pub fn conclude_batch(&self, frames: &[Vec<u8>]) -> Vec<Verdict> {
        self.conclude_batch_with(frames, self.parallelism())
    }

    /// [`conclude_batch`](FleetVerifier::conclude_batch) with an
    /// explicit worker cap, for callers that already own some of the
    /// machine — a [`MultiGateway`](crate::MultiGateway) reactor
    /// concludes with `parallelism / reactors` workers so the reactors'
    /// pools together never oversubscribe the cores.
    pub fn conclude_batch_with(&self, frames: &[Vec<u8>], workers: usize) -> Vec<Verdict> {
        /// Below this, thread spawn/join costs more than it buys.
        const PARALLEL_MIN: usize = 32;

        if frames.len() < PARALLEL_MIN || workers < 2 {
            return frames.iter().map(|f| self.conclude(f)).collect();
        }

        // Only the *first* frame per device (in input order) races on
        // the pool; repeats are deferred. Undecodable frames carry no
        // device id and cannot collide, so they pool freely.
        let mut seen = HashSet::new();
        let mut pooled: Vec<usize> = Vec::with_capacity(frames.len());
        let mut deferred: Vec<usize> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            match Envelope::from_bytes(frame) {
                Ok(e) if !seen.insert(DeviceId(e.device_id)) => deferred.push(i),
                _ => pooled.push(i),
            }
        }

        let mut results: Vec<Option<Verdict>> = frames.iter().map(|_| None).collect();
        let per_worker = Self::chunk_len(pooled.len(), workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pooled
                .chunks(per_worker)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&i| (i, self.conclude(&frames[i])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("conclude worker never panics") {
                    results[i] = Some(result);
                }
            }
        });
        // The pool has drained, so each device's first frame has
        // already settled its session; these repeats now observe what
        // a serial pass would — `NoSession` (or `UnknownDevice`).
        for i in deferred {
            results[i] = Some(self.conclude(&frames[i]));
        }
        results
            .into_iter()
            .map(|r| r.expect("every input index concluded exactly once"))
            .collect()
    }

    /// Frames per pool worker: the batch split as evenly as possible
    /// across `workers` chunks. Never zero, and — unlike the old
    /// hard-wired `workers.min(8)` — never capped below the requested
    /// width, so `chunks(chunk_len(n, w))` yields `min(w, n)` chunks.
    fn chunk_len(frames: usize, workers: usize) -> usize {
        frames.div_ceil(workers.max(1)).max(1)
    }

    /// Concludes a whole round: absorbs every response frame, then
    /// charges [`FleetError::NoResponse`] to each challenged device
    /// whose session is still dangling — aborting it, so the registry
    /// ends the round with zero sessions in flight for `challenged`.
    ///
    /// Per-device isolation: a frame that fails to decode, or evidence
    /// that fails its check, yields a rejected outcome for that device
    /// only; every other frame in the round is still judged.
    ///
    /// A thin lock-step driver over [`RoundEngine`]: the frames are
    /// concluded as one [`conclude_batch`](FleetVerifier::conclude_batch)
    /// (so large rounds verify MACs on the worker pool), their verdicts
    /// injected in frame order, and one tick at the lock-step deadline
    /// settles the silent devices.
    pub fn conclude_round(&self, challenged: &[DeviceId], frames: &[Vec<u8>]) -> RoundReport {
        let mut engine = RoundEngine::resume(self, challenged, RoundConfig::lockstep());
        for (device, result) in self.conclude_batch(frames) {
            engine.outcome_received(device, result);
        }
        engine.tick(engine.now());
        engine.into_report()
    }

    /// Drops the in-flight session for `id`, if any. Returns whether a
    /// session was actually aborted.
    pub fn abort(&self, id: DeviceId) -> bool {
        let mut shard = self.shard(id).lock().unwrap();
        shard
            .devices
            .get_mut(&id)
            .and_then(|e| e.in_flight.take())
            .is_some()
    }

    /// Drives one full lock-step round over a [`Transport`]:
    /// challenges every device in `ids`, pumps every request frame out
    /// and every immediately-available response frame back in, and
    /// settles. Devices whose response is not available by then are
    /// reported as [`FleetError::NoResponse`].
    ///
    /// This is the zero-latency driver over [`RoundEngine`] — right
    /// for [`Loopback`](crate::Loopback), where responses appear the
    /// moment a request is sent. A transport with real latency wants
    /// [`drive_round`](crate::stream::drive_round) (a response budget
    /// mapped onto engine ticks) or a hand-rolled engine loop.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued in that case).
    pub fn run_round<T: Transport + ?Sized>(
        &self,
        ids: &[DeviceId],
        transport: &mut T,
    ) -> Result<RoundReport, FleetError> {
        let mut engine = RoundEngine::begin(self, ids, RoundConfig::lockstep())?;
        while let Some((device, frame)) = engine.poll_transmit() {
            transport.send(device, &frame);
        }
        while let Some(frame) = transport.try_recv() {
            engine.frame_received(&frame);
        }
        engine.tick(engine.now());
        Ok(engine.into_report())
    }

    /// Drives one full round through a [`FleetGateway`]: challenges
    /// every device in `ids`, lets the gateway route each request to
    /// whichever connection its device announced itself on, and maps
    /// the wall-clock `budget` onto engine ticks — exactly
    /// [`drive_round`](crate::stream::drive_round)'s contract, but over
    /// *many* concurrent prover connections instead of one stream.
    /// Inbound frames are concluded via
    /// [`conclude_batch`](FleetVerifier::conclude_batch), so a busy
    /// sweep verifies MACs on the scoped worker pool.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued in that case).
    pub fn run_round_gateway<L: GatewayListener>(
        &self,
        ids: &[DeviceId],
        gateway: &mut FleetGateway<L>,
        budget: std::time::Duration,
    ) -> Result<RoundReport, FleetError> {
        gateway.drive_round(self, ids, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks_of(frames: usize, workers: usize) -> usize {
        if frames == 0 {
            return 0;
        }
        frames.div_ceil(FleetVerifier::chunk_len(frames, workers))
    }

    #[test]
    fn chunking_uses_every_requested_worker() {
        // The regression: `workers.min(8)` used to split 64 frames on
        // a 16-way box into 8 chunks of 8 — half the pool idle.
        assert_eq!(FleetVerifier::chunk_len(64, 16), 4);
        assert_eq!(chunks_of(64, 16), 16);
        assert_eq!(chunks_of(1024, 32), 32);
    }

    #[test]
    fn chunking_never_yields_empty_or_excess_chunks() {
        for frames in [1, 2, 31, 32, 33, 64, 100, 1000] {
            for workers in [1, 2, 7, 8, 9, 16, 64, 1000] {
                let len = FleetVerifier::chunk_len(frames, workers);
                assert!(len >= 1, "chunks must be non-empty");
                let chunks = chunks_of(frames, workers);
                assert!(
                    chunks <= workers.min(frames),
                    "never more chunks than workers"
                );
                // No hard-wired cap (the old `workers.min(8)`): with
                // enough frames to feed the pool, ceil-chunking keeps
                // at least half the requested workers busy, however
                // wide the pool.
                if frames >= workers {
                    assert!(
                        chunks * 2 >= workers,
                        "{frames} frames / {workers} workers → {chunks}"
                    );
                }
            }
        }
        // Degenerate inputs stay sane rather than dividing by zero.
        assert_eq!(FleetVerifier::chunk_len(0, 8), 1);
        assert_eq!(FleetVerifier::chunk_len(5, 0), 5);
    }

    #[test]
    fn parallelism_knob_round_trips_and_zero_means_auto() {
        let fleet = FleetVerifier::new();
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(fleet.parallelism(), auto);
        fleet.set_parallelism(3);
        assert_eq!(fleet.parallelism(), 3);
        fleet.set_parallelism(0);
        assert_eq!(fleet.parallelism(), auto);
    }

    #[test]
    fn reactor_affinity_partitions_shards() {
        // Every device lands on exactly one reactor, and that reactor
        // is a pure function of its registry shard — whatever shard
        // count the fleet was constructed with.
        for shards in [1, 4, SHARD_COUNT, 64] {
            let fleet = FleetVerifier::with_shards(shards);
            assert_eq!(fleet.shard_count(), shards);
            for reactors in 1..=4 {
                for id in 0..1000 {
                    let id = DeviceId(id);
                    let r = fleet.reactor_of(id, reactors);
                    assert!(r < reactors);
                    assert_eq!(r, fleet.shard_of(id) % reactors);
                    assert_eq!(fleet.shard_of(id), FleetVerifier::shard_in(id, shards));
                }
            }
            // One reactor owns everything.
            assert!((0..1000).all(|id| fleet.reactor_of(DeviceId(id), 1) == 0));
        }
    }

    #[test]
    fn default_shard_count_is_pinned() {
        // The default fleet keeps the historical 16-shard layout, so
        // shard/reactor affinity of existing deployments is unchanged.
        let fleet = FleetVerifier::new();
        assert_eq!(fleet.shard_count(), SHARD_COUNT);
        for id in 0..1000 {
            let id = DeviceId(id);
            assert_eq!(fleet.shard_of(id), FleetVerifier::shard_in(id, SHARD_COUNT));
        }
    }

    #[test]
    fn with_shards_clamps_zero_to_one() {
        let fleet = FleetVerifier::with_shards(0);
        assert_eq!(fleet.shard_count(), 1);
        assert_eq!(fleet.shard_of(DeviceId(7)), 0);
    }

    #[test]
    fn remove_bumps_generation_and_drops_sessions() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = VerifierSpec::from_image(&image).unwrap();
        let fleet = FleetVerifier::with_shards(4);
        let id = DeviceId(9);
        fleet.register(id, b"k", spec).unwrap();
        fleet.begin(id).unwrap();
        assert!(fleet.session_pending(id));
        let before = fleet.membership_generation();

        assert!(fleet.remove(id));
        assert_eq!(fleet.membership_generation(), before + 1);
        assert!(!fleet.is_registered(id));
        assert_eq!(fleet.in_flight(), 0);
        // Removing an unknown id is a no-op, generation included.
        assert!(!fleet.remove(id));
        assert_eq!(fleet.membership_generation(), before + 1);
    }

    #[test]
    fn rekey_restarts_the_counter_and_aborts_in_flight() {
        let image = asap::programs::fig4_authorized().unwrap();
        let spec = VerifierSpec::from_image(&image).unwrap();
        let fleet = FleetVerifier::new();
        let id = DeviceId(3);
        fleet.register(id, b"old", spec).unwrap();
        fleet.begin(id).unwrap();

        let generation = fleet.membership_generation();
        fleet.rekey(id, b"new").unwrap();
        assert!(!fleet.session_pending(id), "stale challenge aborted");
        assert!(fleet.is_registered(id));
        assert_eq!(
            fleet.membership_generation(),
            generation,
            "rekey is not an eviction"
        );
        assert_eq!(
            fleet.rekey(DeviceId(99), b"x"),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
    }
}
