//! Fleet-level failures, layered over [`asap::AsapError`].
//!
//! A fleet round can fail in ways a single session cannot: a frame can
//! be unattributable, a device can be unknown or have no challenge
//! outstanding, a response can simply never arrive. Those are
//! [`FleetError`] variants of their own; a session that *concluded* and
//! was judged invalid keeps its precise per-session reason inside
//! [`FleetError::Rejected`].

use crate::DeviceId;
use apex_pox::wire::WireError;
use asap::AsapError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong for one device in a fleet round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// [`FleetVerifier::register`](crate::FleetVerifier::register) was
    /// called twice for the same device.
    DuplicateDevice(DeviceId),
    /// The device id is not enrolled in the fleet.
    UnknownDevice(DeviceId),
    /// Evidence arrived for a device with no challenge outstanding —
    /// the replay shape at fleet level: the session it answered was
    /// already concluded (or never begun).
    NoSession(DeviceId),
    /// The device was challenged this round but no response frame came
    /// back before the round concluded.
    NoResponse(DeviceId),
    /// The device was removed from the fleet while its round was in
    /// flight ([`FleetVerifier::remove`](crate::FleetVerifier::remove)):
    /// the round resolves it immediately with this verdict — never
    /// leaving it to dangle to a `NoResponse` deadline — via
    /// [`RoundEngine::sync_membership`](crate::RoundEngine::sync_membership).
    Evicted(DeviceId),
    /// The envelope itself failed to decode, so the frame cannot be
    /// attributed to any device.
    Frame(WireError),
    /// The session concluded and the evidence was judged invalid; the
    /// inner error is the per-session verdict (`BadMac`, `Wire`,
    /// `NotExecuted`, …).
    Rejected(AsapError),
}

impl FleetError {
    /// The per-session rejection reason, when there is one.
    pub fn rejection(&self) -> Option<&AsapError> {
        match self {
            FleetError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::DuplicateDevice(id) => write!(f, "device {id} is already enrolled"),
            FleetError::UnknownDevice(id) => write!(f, "device {id} is not enrolled"),
            FleetError::NoSession(id) => {
                write!(f, "device {id} has no challenge outstanding")
            }
            FleetError::NoResponse(id) => {
                write!(f, "device {id} never answered this round's challenge")
            }
            FleetError::Evicted(id) => {
                write!(f, "device {id} was evicted before its round resolved")
            }
            FleetError::Frame(e) => write!(f, "unattributable frame: {e}"),
            FleetError::Rejected(e) => write!(f, "evidence rejected: {e}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Frame(e) => Some(e),
            FleetError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_device() {
        let id = DeviceId(42);
        for e in [
            FleetError::DuplicateDevice(id),
            FleetError::UnknownDevice(id),
            FleetError::NoSession(id),
            FleetError::NoResponse(id),
            FleetError::Evicted(id),
        ] {
            assert!(e.to_string().contains("42"), "{e}");
        }
    }

    #[test]
    fn rejection_unwraps_only_session_verdicts() {
        assert_eq!(
            FleetError::Rejected(AsapError::BadMac).rejection(),
            Some(&AsapError::BadMac)
        );
        assert_eq!(FleetError::NoSession(DeviceId(1)).rejection(), None);
    }
}
