//! The single-peer stream transport: length-prefixed [`Envelope`]
//! frames over one byte stream (TCP or Unix-domain), std-only — plus
//! the reusable non-blocking halves every stream speaker in this crate
//! is built from.
//!
//! Three layers live here:
//!
//! * **The halves** — [`pump_read`] (one non-blocking read attempt into
//!   a [`StreamDeframer`], every outcome named by [`ReadPump`]) and
//!   [`WriteQueue`] (a bounded byte queue flushed with partial-write
//!   backpressure, outcomes named by [`WritePump`]). These are the
//!   *only* places raw socket reads and writes happen: the single-peer
//!   transport below, the prover loop, and the multi-peer
//!   [`FleetGateway`](crate::FleetGateway) all share them, so framing
//!   behaviour cannot drift between the two driving modes.
//! * **[`StreamTransport`]** — the verifier-side single-peer transport:
//!   a non-blocking pump (`send`/`try_recv`) multiplexing a whole fleet
//!   over **one** stream, the envelope's device id doing the routing. A
//!   read timeout is *not* an error — `try_recv` returns `None`, the
//!   driver [`tick`]s the engine, and a device that stays silent past
//!   its deadline settles as
//!   [`FleetError::NoResponse`](crate::FleetError::NoResponse).
//! * **The drivers** — [`drive_round`] glues a [`Transport`] to the
//!   [`RoundEngine`] by mapping elapsed wall-clock milliseconds to
//!   [`LogicalTime`] ticks (the engine itself stays free of clocks),
//!   pacing its idle loop by the transport's
//!   [`recv_pacing`](Transport::recv_pacing) hint; [`serve_frames`] and
//!   [`announce_devices`] are the matching prover-side pieces for
//!   examples, tests and benches that host simulated devices behind a
//!   socket.
//!
//! [`tick`]: RoundEngine::tick

use crate::engine::{LogicalTime, RoundConfig, RoundEngine};
use crate::error::FleetError;
use crate::registry::FleetVerifier;
use crate::round::RoundReport;
use crate::transport::Transport;
use crate::DeviceId;
use apex_pox::wire::{frame_stream, Envelope, StreamDeframer, MAX_FRAME_LEN};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Default socket read timeout: how long one `try_recv` may wait
/// before reporting "nothing yet" and letting the driver tick.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_millis(20);

/// True for the error kinds that mean "nothing to do right now" on a
/// non-blocking or timeout-configured socket.
fn is_not_ready(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// What one [`pump_read`] attempt did to the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPump {
    /// Bytes were read and absorbed into the deframer.
    Bytes(usize),
    /// Nothing available right now (`WouldBlock`/read timeout).
    Idle,
    /// Orderly EOF: the peer hung up.
    Closed,
    /// A hard I/O error: the stream is beyond recovery.
    Broken,
}

/// One read attempt from `stream` into `deframer` — the shared receive
/// half. Never loops waiting for data: a non-blocking socket yields
/// [`ReadPump::Idle`] immediately, a timeout-configured one after at
/// most its read timeout. `Interrupted` is retried, since it carries no
/// information about the stream.
pub fn pump_read<S: Read + ?Sized>(stream: &mut S, deframer: &mut StreamDeframer) -> ReadPump {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadPump::Closed,
            Ok(n) => {
                deframer.extend(&chunk[..n]);
                return ReadPump::Bytes(n);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_not_ready(e.kind()) => return ReadPump::Idle,
            Err(_) => return ReadPump::Broken,
        }
    }
}

/// What one [`WriteQueue::flush`] attempt did to the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePump {
    /// Every queued byte is on the wire.
    Drained,
    /// The stream stopped accepting bytes; the payload is how many were
    /// written before it did. The rest stay queued for the next flush.
    Blocked(usize),
    /// The peer hung up mid-write.
    Closed,
    /// A hard I/O error: the stream is beyond recovery.
    Broken,
}

/// The shared transmit half: a bounded byte queue in front of a
/// non-blocking (or timeout-configured) stream.
///
/// [`enqueue`](WriteQueue::enqueue) accepts a frame when it fits the
/// bound — except that an *empty* queue always accepts one frame, so a
/// frame no larger than the bound can never be stuck un-sendable.
/// [`flush`](WriteQueue::flush) writes as much as the stream will take
/// and leaves the rest queued: a `WouldBlock` mid-frame is
/// backpressure, not an error, and never wedges the caller's loop.
#[derive(Debug)]
pub struct WriteQueue {
    buf: VecDeque<u8>,
    capacity: usize,
}

/// Default [`WriteQueue`] bound: two maximal frames, so one oversized
/// burst is absorbed while a peer that never drains is still detected.
pub const DEFAULT_WRITE_QUEUE_CAPACITY: usize = 2 * (MAX_FRAME_LEN as usize + 4);

impl Default for WriteQueue {
    fn default() -> WriteQueue {
        WriteQueue::with_capacity(DEFAULT_WRITE_QUEUE_CAPACITY)
    }
}

impl WriteQueue {
    /// An empty queue bounded at `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> WriteQueue {
        WriteQueue {
            buf: VecDeque::new(),
            capacity,
        }
    }

    /// Queues `bytes` for transmission. Returns `false` — queuing
    /// *nothing* — when the queue is non-empty and the bytes would push
    /// it over capacity: the peer is not draining, and the caller
    /// decides whether that means "drop the connection" (the gateway)
    /// or "keep flushing first" (a lock-step sender).
    #[must_use]
    pub fn enqueue(&mut self, bytes: &[u8]) -> bool {
        if !self.buf.is_empty() && self.buf.len() + bytes.len() > self.capacity {
            return false;
        }
        self.buf.extend(bytes);
        true
    }

    /// Writes as many queued bytes as `stream` accepts right now.
    ///
    /// Writes are **coalesced**: when several frames are queued (a
    /// round's worth of challenges for one connection), they go to the
    /// stream as one contiguous buffer per `write` call rather than one
    /// write per frame — or two when the ring buffer happens to wrap.
    /// The byte stream is identical either way; only the syscall count
    /// changes.
    pub fn flush<S: Write + ?Sized>(&mut self, stream: &mut S) -> WritePump {
        let mut wrote = 0;
        while !self.buf.is_empty() {
            let head: &[u8] = self.buf.make_contiguous();
            match stream.write(head) {
                Ok(0) => return WritePump::Closed,
                Ok(n) => {
                    self.buf.drain(..n);
                    wrote += n;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_not_ready(e.kind()) => return WritePump::Blocked(wrote),
                Err(_) => return WritePump::Broken,
            }
        }
        match stream.flush() {
            Ok(()) => WritePump::Drained,
            Err(e) if e.kind() == ErrorKind::Interrupted || is_not_ready(e.kind()) => {
                WritePump::Drained
            }
            Err(_) => WritePump::Broken,
        }
    }

    /// Bytes queued but not yet written.
    pub fn queued(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A verifier-side transport over one framed byte stream.
///
/// Generic over the stream type so TCP ([`TcpStream`]) and Unix-domain
/// ([`std::os::unix::net::UnixStream`]) sockets — or an in-memory pipe
/// in tests — share one implementation. The stream should have a read
/// timeout configured (the `connect*` constructors do this); without
/// one, `try_recv` blocks until the peer writes or hangs up.
pub struct StreamTransport<S> {
    stream: S,
    deframer: StreamDeframer,
    outbox: WriteQueue,
    /// The configured socket read timeout, surfaced to drivers via
    /// [`Transport::recv_pacing`] so they know `try_recv` already
    /// paces the loop.
    read_timeout: Option<Duration>,
    /// Set once the stream or framing is beyond recovery (EOF, I/O
    /// error, oversized frame): all further sends and receives are
    /// no-ops, and outstanding devices settle as `NoResponse`.
    dead: bool,
}

impl StreamTransport<TcpStream> {
    /// Connects over TCP with [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<StreamTransport<TcpStream>> {
        StreamTransport::connect_with(addr, DEFAULT_READ_TIMEOUT)
    }

    /// Connects over TCP with an explicit read/write timeout — the
    /// knob for links whose round-trip does not fit the default (a
    /// congested uplink wants more; a loopback bench wants less).
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect_with(
        addr: impl std::net::ToSocketAddrs,
        timeout: Duration,
    ) -> std::io::Result<StreamTransport<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(StreamTransport::over(stream).paced_by(timeout))
    }
}

#[cfg(unix)]
impl StreamTransport<std::os::unix::net::UnixStream> {
    /// Connects over a Unix-domain socket with [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect_uds(
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<StreamTransport<std::os::unix::net::UnixStream>> {
        StreamTransport::connect_uds_with(path, DEFAULT_READ_TIMEOUT)
    }

    /// Connects over a Unix-domain socket with an explicit read/write
    /// timeout.
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect_uds_with(
        path: impl AsRef<std::path::Path>,
        timeout: Duration,
    ) -> std::io::Result<StreamTransport<std::os::unix::net::UnixStream>> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(StreamTransport::over(stream).paced_by(timeout))
    }

    /// A connected socketpair: the verifier-side transport plus the raw
    /// prover-side stream (hand it to [`serve_frames`] in a prover
    /// thread). The verifier side gets [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any socketpair/configure error from the socket layer.
    pub fn pair() -> std::io::Result<(
        StreamTransport<std::os::unix::net::UnixStream>,
        std::os::unix::net::UnixStream,
    )> {
        StreamTransport::pair_with(DEFAULT_READ_TIMEOUT)
    }

    /// A connected socketpair whose verifier side uses an explicit
    /// read/write timeout.
    ///
    /// # Errors
    ///
    /// Any socketpair/configure error from the socket layer.
    pub fn pair_with(
        timeout: Duration,
    ) -> std::io::Result<(
        StreamTransport<std::os::unix::net::UnixStream>,
        std::os::unix::net::UnixStream,
    )> {
        let (verifier, prover) = std::os::unix::net::UnixStream::pair()?;
        verifier.set_read_timeout(Some(timeout))?;
        verifier.set_write_timeout(Some(timeout))?;
        Ok((StreamTransport::over(verifier).paced_by(timeout), prover))
    }
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps an already-connected, already-configured stream. The
    /// transport assumes no read timeout is set; if one is, record it
    /// with [`paced_by`](StreamTransport::paced_by) so drivers skip
    /// their fallback sleep.
    pub fn over(stream: S) -> StreamTransport<S> {
        StreamTransport {
            stream,
            deframer: StreamDeframer::new(),
            outbox: WriteQueue::default(),
            read_timeout: None,
            dead: false,
        }
    }

    /// Declares the read timeout already configured on the wrapped
    /// stream, so [`Transport::recv_pacing`] can report it.
    pub fn paced_by(mut self, timeout: Duration) -> StreamTransport<S> {
        self.read_timeout = Some(timeout);
        self
    }

    /// The read timeout this transport believes its stream has.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// True once the stream has failed (EOF, I/O error, or an
    /// oversized/unrecoverable frame). A dead transport never yields
    /// another frame, so outstanding devices settle by deadline.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// Consecutive stalled write attempts (write timed out *and* no write
/// progress) before a send declares the stream dead. With the default
/// timeouts this bounds a wedged peer to roughly two seconds, instead
/// of deadlocking the round forever.
const MAX_SEND_STALLS: u32 = 50;

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn send(&mut self, _device: DeviceId, frame: &[u8]) {
        // The envelope already carries the device id; the stream needs
        // only the length prefix. Write errors kill the transport —
        // loss is reported by omission, per the trait contract.
        if self.dead {
            return;
        }
        if !self.outbox.enqueue(&frame_stream(frame)) {
            // Over the bound with a peer that is not draining: wedged.
            self.dead = true;
            return;
        }
        let mut stalls = 0;
        loop {
            match self.outbox.flush(&mut self.stream) {
                WritePump::Drained => return,
                WritePump::Blocked(wrote) => {
                    // Backpressure: with both sides single-threaded, a
                    // full send buffer usually means the peer is itself
                    // blocked writing responses we have not read. Drain
                    // whatever is readable into the deframer (the frames
                    // surface later via try_recv) so the peer can make
                    // progress, then retry the write. Only *write*
                    // progress resets the stall counter: a peer that
                    // floods bytes while never draining our writes must
                    // still run out of stalls, not hold send() forever.
                    stalls = if wrote > 0 { 1 } else { stalls + 1 };
                    if stalls >= MAX_SEND_STALLS {
                        self.dead = true; // wedged or hostile peer, give up
                        return;
                    }
                    match pump_read(&mut self.stream, &mut self.deframer) {
                        ReadPump::Bytes(_) | ReadPump::Idle => {}
                        ReadPump::Closed | ReadPump::Broken => {
                            self.dead = true;
                            return;
                        }
                    }
                }
                WritePump::Closed | WritePump::Broken => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        loop {
            match self.deframer.next_frame() {
                Ok(Some(frame)) => return Some(frame),
                Ok(None) => {}
                Err(_) => {
                    // Framing is unrecoverable: a length prefix over the
                    // bound means the frame boundary is lost for good.
                    self.dead = true;
                    return None;
                }
            }
            if self.dead {
                return None;
            }
            match pump_read(&mut self.stream, &mut self.deframer) {
                ReadPump::Bytes(_) => {}
                ReadPump::Idle => return None, // Read timeout: nothing yet — tick.
                ReadPump::Closed | ReadPump::Broken => {
                    self.dead = true;
                    return None;
                }
            }
        }
    }

    fn recv_pacing(&self) -> Option<Duration> {
        // A dead stream returns from try_recv instantly; report no
        // pacing so the driver falls back to its own yield instead of
        // busy-spinning the rest of the budget.
        if self.dead {
            None
        } else {
            self.read_timeout
        }
    }
}

/// Announces the devices hosted behind `stream` to a listening
/// [`FleetGateway`](crate::FleetGateway): one *hello* frame — an
/// [`Envelope`] with an empty payload — per id. The gateway never
/// judges a hello; it only learns "frames for this device go to this
/// connection", which is how challenges find provers that dialed in.
///
/// Single-peer transports must **not** be sent hellos: a
/// [`StreamTransport`] driver would feed the empty payload to the
/// engine as (rejected) evidence.
///
/// # Errors
///
/// Any write error from the stream.
pub fn announce_devices<S: Write>(stream: &mut S, ids: &[DeviceId]) -> std::io::Result<()> {
    for &id in ids {
        stream.write_all(&frame_stream(&Envelope::wrap(id.0, Vec::new()).to_bytes()))?;
    }
    stream.flush()
}

/// Prover-side frame loop: reads [`frame_stream`]-framed envelopes off
/// `stream`, hands each to `respond`, and writes back every frame the
/// handler returns (`None` models a device that stays silent). Returns
/// when the peer hangs up or the framing breaks.
///
/// This is the glue an out-of-process prover host needs: the examples,
/// the socket integration tests and the benches all run simulated
/// [`Device`](asap::Device)s behind it in their own thread. Pair it
/// with [`announce_devices`] when the verifier side is a
/// [`FleetGateway`](crate::FleetGateway).
pub fn serve_frames<S: Read + Write>(
    mut stream: S,
    mut respond: impl FnMut(DeviceId, &Envelope) -> Option<Vec<u8>>,
) {
    let mut deframer = StreamDeframer::new();
    loop {
        match deframer.next_frame() {
            Ok(Some(frame)) => {
                let Ok(envelope) = Envelope::from_bytes(&frame) else {
                    continue; // A prover ignores garbled frames.
                };
                let id = DeviceId(envelope.device_id);
                if let Some(response) = respond(id, &envelope) {
                    if stream.write_all(&frame_stream(&response)).is_err() {
                        return;
                    }
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => return, // Oversized frame: boundaries are lost.
        }
        match pump_read(&mut stream, &mut deframer) {
            ReadPump::Bytes(_) | ReadPump::Idle => {}
            ReadPump::Closed | ReadPump::Broken => return,
        }
    }
}

/// Drives one full round over any [`Transport`] with a real-time
/// response budget: challenges every device, pumps the transport, and
/// maps elapsed wall-clock milliseconds onto the engine's
/// [`LogicalTime`] — so every read timeout becomes a `tick`, and a
/// device that stays silent past `budget` settles as
/// [`FleetError::NoResponse`](crate::FleetError::NoResponse). The
/// wall clock stays *here*, in the driver; the engine only ever sees
/// injected time.
///
/// The idle loop is paced by the transport itself: a transport whose
/// [`recv_pacing`](Transport::recv_pacing) reports a read timeout has
/// already waited that long inside `try_recv`, so the driver ticks and
/// retries immediately; one with no pacing (or a dead stream returning
/// instantly) gets a short sleep so it cannot busy-spin a core for the
/// whole budget. The budget should comfortably exceed the transport's
/// read timeout, or the first silent wait may overshoot it.
///
/// # Errors
///
/// [`FleetError::UnknownDevice`] when an id is not enrolled (no
/// challenge is issued in that case).
pub fn drive_round<T: Transport + ?Sized>(
    fleet: &FleetVerifier,
    ids: &[DeviceId],
    transport: &mut T,
    budget: Duration,
) -> Result<RoundReport, FleetError> {
    let mut engine = RoundEngine::begin(fleet, ids, RoundConfig::realtime(budget))?;
    // The budget clock starts before the send phase: sends can stall on
    // backpressure, and that time must count against the round too.
    let started = Instant::now();
    while let Some((device, frame)) = engine.poll_transmit() {
        transport.send(device, &frame);
    }
    while !engine.is_settled() {
        match transport.try_recv() {
            Some(frame) => engine.frame_received(&frame),
            // No frame: a transport with a configured read timeout has
            // already paced this iteration; anything else yields
            // briefly so an instantly-returning transport does not
            // busy-spin a core for the whole budget.
            None => {
                if transport.recv_pacing().is_none() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Tick unconditionally: a peer flooding frames must not be able
        // to hold the round open past its budget.
        engine.tick(LogicalTime(started.elapsed().as_millis() as u64));
    }
    Ok(engine.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream scripted to accept `accept` bytes per write call, then
    /// report `WouldBlock`.
    struct Throttled {
        accept: Vec<usize>,
        written: Vec<u8>,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self.accept.pop() {
                Some(0) | None => Err(ErrorKind::WouldBlock.into()),
                Some(n) => {
                    let n = n.min(buf.len());
                    self.written.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_partial_writes() {
        let mut q = WriteQueue::with_capacity(64);
        assert!(q.enqueue(b"hello world"));
        let mut stream = Throttled {
            accept: vec![3], // popped back-to-front
            written: Vec::new(),
        };
        assert_eq!(q.flush(&mut stream), WritePump::Blocked(3));
        assert_eq!(q.queued(), 8, "the rest stays queued");
        stream.accept = vec![100];
        assert_eq!(q.flush(&mut stream), WritePump::Drained);
        assert_eq!(stream.written, b"hello world");
        assert!(q.is_empty());
    }

    #[test]
    fn write_queue_bound_rejects_only_when_nonempty() {
        let mut q = WriteQueue::with_capacity(4);
        // An empty queue always accepts one frame, even over the bound.
        assert!(q.enqueue(b"oversized"));
        // A non-empty queue refuses to grow past the bound...
        assert!(!q.enqueue(b"x"));
        // ...and refusal queues nothing.
        assert_eq!(q.queued(), 9);
    }

    /// A stream that takes everything, counting `write` calls.
    struct Greedy {
        writes: usize,
        written: Vec<u8>,
    }

    impl Write for Greedy {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_coalesces_frames_and_preserves_framing_bit_for_bit() {
        use apex_pox::wire::{frame_stream, Envelope, StreamDeframer};

        // A round's worth of challenges for one connection, enqueued
        // frame by frame — including across a partial flush so the ring
        // buffer wraps internally. The wire bytes must equal the plain
        // concatenation of the framed envelopes (framing bit-identity),
        // and each ready stream must see exactly ONE write syscall per
        // flush, however many frames are queued.
        let frames: Vec<Vec<u8>> = (1u64..=5)
            .map(|d| frame_stream(&Envelope::wrap(d, vec![d as u8; 24 * d as usize]).to_bytes()))
            .collect();
        let expected: Vec<u8> = frames.iter().flatten().copied().collect();

        let mut q = WriteQueue::with_capacity(4096);
        let mut wire = Vec::new();
        assert!(q.enqueue(&frames[0]));
        assert!(q.enqueue(&frames[1]));
        // A partial write leaves a tail queued; the next enqueues then
        // wrap the ring around its head.
        let mut throttled = Throttled {
            accept: vec![7],
            written: Vec::new(),
        };
        assert_eq!(q.flush(&mut throttled), WritePump::Blocked(7));
        wire.extend_from_slice(&throttled.written);
        for frame in &frames[2..] {
            assert!(q.enqueue(frame));
        }

        let mut greedy = Greedy {
            writes: 0,
            written: Vec::new(),
        };
        assert_eq!(q.flush(&mut greedy), WritePump::Drained);
        assert_eq!(
            greedy.writes, 1,
            "queued frames coalesce into one write syscall, wrapped ring included"
        );
        wire.extend_from_slice(&greedy.written);
        assert_eq!(wire, expected, "coalescing must not disturb a single byte");

        // And the peer's deframer recovers the envelopes exactly.
        let mut deframer = StreamDeframer::new();
        deframer.extend(&wire);
        for (d, frame) in frames.iter().enumerate() {
            let got = deframer
                .next_frame()
                .expect("framing intact")
                .expect("frame complete");
            assert_eq!(&frame_stream(&got), frame, "frame {d} round-trips");
        }
        assert!(matches!(deframer.next_frame(), Ok(None)), "no residue");
    }

    #[test]
    fn pump_read_maps_io_outcomes() {
        let mut deframer = StreamDeframer::new();
        let mut eof: &[u8] = &[];
        assert_eq!(pump_read(&mut eof, &mut deframer), ReadPump::Closed);

        struct NotReady;
        impl Read for NotReady {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(ErrorKind::WouldBlock.into())
            }
        }
        assert_eq!(pump_read(&mut NotReady, &mut deframer), ReadPump::Idle);

        let mut bytes: &[u8] = &[1, 2, 3];
        assert_eq!(pump_read(&mut bytes, &mut deframer), ReadPump::Bytes(3));
        assert_eq!(deframer.pending(), 3);
    }
}
