//! The first real transport: length-prefixed [`Envelope`] frames over
//! a byte stream (TCP or Unix-domain), std-only.
//!
//! [`StreamTransport`] multiplexes a whole fleet over **one** stream —
//! the envelope's device id does the routing, which is exactly what it
//! exists for. The transport is still a non-blocking pump: `send`
//! writes one [`frame_stream`]-framed envelope, `try_recv` reads
//! whatever bytes are available within the socket's read timeout and
//! returns at most one complete frame. A timeout is *not* an error —
//! it returns `None`, the driver [`tick`]s the engine, and a device
//! that stays silent past its deadline settles as
//! [`FleetError::NoResponse`](crate::FleetError::NoResponse). All
//! framing state lives in the sans-IO
//! [`StreamDeframer`](apex_pox::wire::StreamDeframer).
//!
//! [`drive_round`] is the wall-clock driver gluing a [`Transport`] to
//! the [`RoundEngine`]: it maps elapsed milliseconds to
//! [`LogicalTime`] ticks, so the engine itself stays free of clocks.
//! [`serve_frames`] is the matching prover-side loop for examples,
//! tests and benches that host simulated devices behind a socket.
//!
//! [`tick`]: RoundEngine::tick

use crate::engine::{LogicalTime, RoundConfig, RoundEngine};
use crate::error::FleetError;
use crate::registry::FleetVerifier;
use crate::round::RoundReport;
use crate::transport::Transport;
use crate::DeviceId;
use apex_pox::wire::{frame_stream, Envelope, StreamDeframer};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Default socket read timeout: how long one `try_recv` may wait
/// before reporting "nothing yet" and letting the driver tick.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_millis(20);

/// A verifier-side transport over one framed byte stream.
///
/// Generic over the stream type so TCP ([`TcpStream`]) and Unix-domain
/// ([`std::os::unix::net::UnixStream`]) sockets — or an in-memory pipe
/// in tests — share one implementation. The stream should have a read
/// timeout configured (the `connect*` constructors do this); without
/// one, `try_recv` blocks until the peer writes or hangs up.
pub struct StreamTransport<S> {
    stream: S,
    deframer: StreamDeframer,
    /// Set once the stream or framing is beyond recovery (EOF, I/O
    /// error, oversized frame): all further sends and receives are
    /// no-ops, and outstanding devices settle as `NoResponse`.
    dead: bool,
}

impl StreamTransport<TcpStream> {
    /// Connects over TCP with [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<StreamTransport<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(StreamTransport::over(stream))
    }
}

#[cfg(unix)]
impl StreamTransport<std::os::unix::net::UnixStream> {
    /// Connects over a Unix-domain socket with [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any connect/configure error from the socket layer.
    pub fn connect_uds(
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<StreamTransport<std::os::unix::net::UnixStream>> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        Ok(StreamTransport::over(stream))
    }

    /// A connected socketpair: the verifier-side transport plus the raw
    /// prover-side stream (hand it to [`serve_frames`] in a prover
    /// thread). The verifier side gets [`DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Any socketpair/configure error from the socket layer.
    pub fn pair() -> std::io::Result<(
        StreamTransport<std::os::unix::net::UnixStream>,
        std::os::unix::net::UnixStream,
    )> {
        let (verifier, prover) = std::os::unix::net::UnixStream::pair()?;
        verifier.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        verifier.set_write_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        Ok((StreamTransport::over(verifier), prover))
    }
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps an already-connected, already-configured stream.
    pub fn over(stream: S) -> StreamTransport<S> {
        StreamTransport {
            stream,
            deframer: StreamDeframer::new(),
            dead: false,
        }
    }

    /// True once the stream has failed (EOF, I/O error, or an
    /// oversized/unrecoverable frame). A dead transport never yields
    /// another frame, so outstanding devices settle by deadline.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// Consecutive stalled write attempts (write timed out *and* nothing
/// was readable) before a send declares the stream dead. With the
/// default timeouts this bounds a wedged peer to roughly two seconds,
/// instead of deadlocking the round forever.
const MAX_SEND_STALLS: u32 = 50;

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn send(&mut self, _device: DeviceId, frame: &[u8]) {
        // The envelope already carries the device id; the stream needs
        // only the length prefix. Write errors kill the transport —
        // loss is reported by omission, per the trait contract.
        if self.dead {
            return;
        }
        let framed = frame_stream(frame);
        let mut written = 0;
        let mut stalls = 0;
        while written < framed.len() {
            match self.stream.write(&framed[written..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    written += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Backpressure: with both sides single-threaded, a
                    // full send buffer usually means the peer is itself
                    // blocked writing responses we have not read. Drain
                    // whatever is readable into the deframer (the frames
                    // surface later via try_recv) so the peer can make
                    // progress, then retry the write. Only *write*
                    // progress resets the stall counter: a peer that
                    // floods bytes while never draining our writes must
                    // still run out of stalls, not hold send() forever.
                    stalls += 1;
                    if stalls >= MAX_SEND_STALLS {
                        self.dead = true; // wedged or hostile peer, give up
                        return;
                    }
                    let mut chunk = [0u8; 4096];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            self.dead = true;
                            return;
                        }
                        Ok(n) => self.deframer.extend(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e)
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                        Err(_) => {
                            self.dead = true;
                            return;
                        }
                    }
                }
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.stream.flush().is_err() {
            self.dead = true;
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        loop {
            match self.deframer.next_frame() {
                Ok(Some(frame)) => return Some(frame),
                Ok(None) => {}
                Err(_) => {
                    // Framing is unrecoverable: a length prefix over the
                    // bound means the frame boundary is lost for good.
                    self.dead = true;
                    return None;
                }
            }
            if self.dead {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true; // EOF: the peer hung up.
                    return None;
                }
                Ok(n) => self.deframer.extend(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return None; // Read timeout: nothing yet — tick.
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return None;
                }
            }
        }
    }
}

/// Prover-side frame loop: reads [`frame_stream`]-framed envelopes off
/// `stream`, hands each to `respond`, and writes back every frame the
/// handler returns (`None` models a device that stays silent). Returns
/// when the peer hangs up or the framing breaks.
///
/// This is the glue an out-of-process prover host needs: the examples,
/// the socket integration test and the bench all run simulated
/// [`Device`](asap::Device)s behind it in their own thread.
pub fn serve_frames<S: Read + Write>(
    mut stream: S,
    mut respond: impl FnMut(DeviceId, &Envelope) -> Option<Vec<u8>>,
) {
    let mut deframer = StreamDeframer::new();
    let mut chunk = [0u8; 4096];
    loop {
        match deframer.next_frame() {
            Ok(Some(frame)) => {
                let Ok(envelope) = Envelope::from_bytes(&frame) else {
                    continue; // A prover ignores garbled frames.
                };
                let id = DeviceId(envelope.device_id);
                if let Some(response) = respond(id, &envelope) {
                    if stream.write_all(&frame_stream(&response)).is_err() {
                        return;
                    }
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => return, // Oversized frame: boundaries are lost.
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => deframer.extend(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

/// Drives one full round over any [`Transport`] with a real-time
/// response budget: challenges every device, pumps the transport, and
/// maps elapsed wall-clock milliseconds onto the engine's
/// [`LogicalTime`] — so every read timeout becomes a `tick`, and a
/// device that stays silent past `budget` settles as
/// [`FleetError::NoResponse`](crate::FleetError::NoResponse). The
/// wall clock stays *here*, in the driver; the engine only ever sees
/// injected time.
///
/// # Errors
///
/// [`FleetError::UnknownDevice`] when an id is not enrolled (no
/// challenge is issued in that case).
pub fn drive_round<T: Transport + ?Sized>(
    fleet: &FleetVerifier,
    ids: &[DeviceId],
    transport: &mut T,
    budget: Duration,
) -> Result<RoundReport, FleetError> {
    let config = RoundConfig::new(LogicalTime(0), budget.as_millis() as u64);
    let mut engine = RoundEngine::begin(fleet, ids, config)?;
    // The budget clock starts before the send phase: sends can stall on
    // backpressure, and that time must count against the round too.
    let started = Instant::now();
    while let Some((device, frame)) = engine.poll_transmit() {
        transport.send(device, &frame);
    }
    while !engine.is_settled() {
        match transport.try_recv() {
            Some(frame) => engine.frame_received(&frame),
            // No frame: yield briefly so a dead or instantly-returning
            // transport does not busy-spin a core for the whole budget.
            // (A live socket already paced us via its read timeout.)
            None => std::thread::sleep(Duration::from_millis(1)),
        }
        // Tick unconditionally: a peer flooding frames must not be able
        // to hold the round open past its budget.
        engine.tick(LogicalTime(started.elapsed().as_millis() as u64));
    }
    Ok(engine.into_report())
}
