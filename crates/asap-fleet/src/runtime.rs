//! The persistent fleet runtime: reactor threads, the accept
//! supervisor and the MAC-conclusion worker pool, owned **across**
//! rounds.
//!
//! [`MultiGateway::drive_round`](crate::MultiGateway::drive_round)
//! rebuilds its world every round: reactors are spawned as scoped
//! threads, mail channels and settled flags are allocated fresh, and
//! every `conclude_batch` raises its own worker pool. That tax is
//! invisible on a one-shot round and ruinous on a *sustained* sweep —
//! continuous attestation drives thousands of rounds back-to-back, and
//! the spawn/join cost serializes against every one of them.
//! [`FleetRuntime`] pays the setup cost once:
//!
//! * **Persistent reactors.** Each reactor thread is spawned at
//!   construction, owns its connection slab for life, and *parks* on
//!   its mail inbox between rounds. A round arrives as a
//!   [`ReactorMsg::Begin`] descriptor over the same channel that
//!   carries cross-reactor mail; per-round scratch — deframers, write
//!   queues, the inbound evidence batch, the transmit staging buffer,
//!   the cohort partition vectors — is reused, not reallocated.
//! * **Shared conclude pool.** A fixed pool of MAC workers serves
//!   every reactor's batches for the lifetime of the runtime
//!   ([`FleetVerifier::conclude_batch_pooled`]); no round spawns a
//!   thread.
//! * **Accept supervision.** The runtime owns the listener; the driver
//!   thread accepts and hands off connections whenever it waits on
//!   epoch completions, exactly as the scoped supervisor did per-round.
//!
//! # Pipelined epochs
//!
//! [`submit_round`](FleetRuntime::submit_round) returns a ticket
//! without waiting for settlement, so a scheduler can keep up to
//! [`depth`](FleetRuntime::depth) epochs in flight: epoch N+1's
//! challenges go out while epoch N's stragglers drain toward their
//! deadlines. Each reactor multiplexes the in-flight epochs in its one
//! sweep loop — separate engines, separate round clocks, one connection
//! slab. Per-epoch reports stay byte-identical across reactor counts
//! *and* pipeline depths because every outcome is charged to the epoch
//! that challenged its device (cohorts in flight are disjoint — see
//! [`LifecycleConfig::pipeline_window`](crate::LifecycleConfig)), and
//! the merge re-canonicalizes exactly as the scoped gateway does.
//!
//! Verdict attribution under churn follows the engines: an eviction
//! landing while several epochs are in flight settles as
//! [`FleetError::Evicted`] in the single epoch that was awaiting the
//! device, and nowhere else.

use crate::error::FleetError;
use crate::gateway::{GatewayConn, GatewayListener, NoListener};
use crate::reactor::{
    merge_reports, ReactorMsg, ReactorRun, ReactorState, ReactorStats, RoundStart, Route,
};
use crate::registry::{ConcludeJob, FleetVerifier};
use crate::round::RoundReport;
use crate::DeviceId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle sweeps that merely yield before a wait loop starts sleeping.
const IDLE_YIELDS: u32 = 64;

/// One epoch's completion, mailed from a reactor to the driver: the
/// reactor's partial report (or the begin error), its cohort partition
/// for recycling, and a stats snapshot.
struct EpochDone {
    reactor: usize,
    epoch: u64,
    result: Result<RoundReport, FleetError>,
    cohort: Vec<DeviceId>,
    stats: ReactorStats,
}

/// An epoch submitted but not yet merged: the canonical challenge
/// order plus the per-reactor partial results as they arrive.
struct PendingEpoch {
    epoch: u64,
    order: Vec<DeviceId>,
    partials: Vec<Option<Result<RoundReport, FleetError>>>,
    received: usize,
}

impl PendingEpoch {
    fn complete(&self) -> bool {
        self.received == self.partials.len()
    }
}

/// A long-lived multi-reactor fleet runtime. See the [module
/// docs](self) for the architecture; construction is
/// [`over`](FleetRuntime::over) / [`detached`](FleetRuntime::detached)
/// / [`bind_tcp`](FleetRuntime::bind_tcp), driving is
/// [`run_round`](FleetRuntime::run_round) for the drop-in serial shape
/// or [`submit_round`](FleetRuntime::submit_round) +
/// [`wait_round`](FleetRuntime::wait_round) for pipelined epochs.
///
/// Dropping the runtime shuts everything down: reactors are told to
/// exit, the conclude pool is detached from the registry and drained,
/// and every thread is joined.
pub struct FleetRuntime<L: GatewayListener>
where
    L::Conn: Send + 'static,
{
    fleet: Arc<FleetVerifier>,
    listener: Option<L>,
    mates: Vec<Sender<ReactorMsg<L::Conn>>>,
    reactor_handles: Vec<JoinHandle<()>>,
    pool_handles: Vec<JoinHandle<()>>,
    done_rx: Receiver<EpochDone>,
    route: Arc<Mutex<HashMap<DeviceId, Route>>>,
    next_reactor: usize,
    accepted_total: u64,
    accept_errors: u64,
    /// Bound on in-flight epochs; `submit_round` blocks (supervising
    /// accepts) once the window is full.
    depth: usize,
    next_epoch: u64,
    /// Epochs submitted anywhere but not yet fully reported, shared
    /// with every reactor: a reactor may only park on its inbox while
    /// this is zero — its connections can carry *another* reactor's
    /// challenges and responses, so finishing its own partition is not
    /// license to stop servicing sockets.
    live_epochs: Arc<AtomicUsize>,
    pending: VecDeque<PendingEpoch>,
    merged: HashMap<u64, Result<RoundReport, FleetError>>,
    stats: Vec<ReactorStats>,
    /// Cohort partition vectors handed back by finished epochs, reused
    /// by the next submission.
    partition_pool: Vec<Vec<DeviceId>>,
}

impl FleetRuntime<TcpListener> {
    /// Binds a TCP listener and builds a persistent runtime over
    /// `reactors` reactor threads with pipeline window `depth`.
    ///
    /// # Errors
    ///
    /// Any bind/configure error from the socket layer.
    pub fn bind_tcp(
        addr: impl std::net::ToSocketAddrs,
        fleet: Arc<FleetVerifier>,
        reactors: usize,
        depth: usize,
    ) -> io::Result<FleetRuntime<TcpListener>> {
        FleetRuntime::over(TcpListener::bind(addr)?, fleet, reactors, depth)
    }
}

impl<C: GatewayConn + Send + 'static> FleetRuntime<NoListener<C>> {
    /// A runtime with no listening socket: every connection enters via
    /// [`adopt`](FleetRuntime::adopt). The vehicle for socketpair
    /// fabrics in tests and benches.
    pub fn detached(
        fleet: Arc<FleetVerifier>,
        reactors: usize,
        depth: usize,
    ) -> FleetRuntime<NoListener<C>> {
        FleetRuntime::build(None, fleet, reactors, depth)
    }
}

impl<L: GatewayListener> FleetRuntime<L>
where
    L::Conn: Send + 'static,
{
    /// Takes ownership of a listening socket (switched to non-blocking
    /// mode) and builds a persistent runtime over `reactors` reactor
    /// threads with pipeline window `depth` (both clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    pub fn over(
        mut listener: L,
        fleet: Arc<FleetVerifier>,
        reactors: usize,
        depth: usize,
    ) -> io::Result<FleetRuntime<L>> {
        listener.prepare()?;
        Ok(FleetRuntime::build(Some(listener), fleet, reactors, depth))
    }

    fn build(
        listener: Option<L>,
        fleet: Arc<FleetVerifier>,
        reactors: usize,
        depth: usize,
    ) -> FleetRuntime<L> {
        let reactors = reactors.max(1);
        let depth = depth.max(1);
        let route = Arc::new(Mutex::new(HashMap::new()));
        let (done_tx, done_rx) = mpsc::channel();
        let (mates, inboxes): (Vec<Sender<ReactorMsg<L::Conn>>>, Vec<_>) =
            (0..reactors).map(|_| mpsc::channel()).unzip();

        // The shared MAC pool: sized to the registry's parallelism
        // knob, attached to the registry so conclude batches route to
        // it for the runtime's whole lifetime.
        let pool_size = fleet.parallelism();
        let (job_tx, job_rx) = mpsc::channel::<ConcludeJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let pool_handles = (0..pool_size)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || run_pool_worker(&job_rx))
            })
            .collect();
        fleet.attach_conclude_pool(job_tx, Arc::downgrade(&fleet), pool_size);

        // Each reactor's in-reactor conclude share mirrors the scoped
        // gateway's split of the machine.
        let workers = (fleet.parallelism() / reactors).max(1);
        let live_epochs = Arc::new(AtomicUsize::new(0));
        let reactor_handles = inboxes
            .into_iter()
            .enumerate()
            .map(|(me, inbox)| {
                let fleet = Arc::clone(&fleet);
                let route = Arc::clone(&route);
                let mates = mates.clone();
                let done = done_tx.clone();
                let live = Arc::clone(&live_epochs);
                std::thread::spawn(move || {
                    run_reactor_persistent(
                        me, reactors, &fleet, &route, &mates, &inbox, &done, &live, workers,
                    );
                })
            })
            .collect();

        FleetRuntime {
            fleet,
            listener,
            mates,
            reactor_handles,
            pool_handles,
            done_rx,
            route,
            next_reactor: 0,
            accepted_total: 0,
            accept_errors: 0,
            depth,
            next_epoch: 0,
            live_epochs,
            pending: VecDeque::new(),
            merged: HashMap::new(),
            stats: vec![
                ReactorStats {
                    connections: 0,
                    dropped_connections: 0,
                    unknown_device_hellos: 0,
                    last_round_outcomes: 0,
                };
                reactors
            ],
            partition_pool: Vec::new(),
        }
    }

    /// The shared registry this runtime serves.
    pub fn fleet(&self) -> &Arc<FleetVerifier> {
        &self.fleet
    }

    /// The owned listener, for callers that need its identity — say,
    /// the ephemeral port a `bind_tcp("127.0.0.1:0", …)` runtime landed
    /// on.
    pub fn listener(&self) -> Option<&L> {
        self.listener.as_ref()
    }

    /// Number of persistent reactor threads.
    pub fn reactors(&self) -> usize {
        self.mates.len()
    }

    /// The pipeline window: how many epochs may be in flight at once.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Epochs submitted but not yet fully reported.
    pub fn in_flight_epochs(&self) -> usize {
        self.pending.len()
    }

    /// Number of devices with a known connection.
    pub fn routed_devices(&self) -> usize {
        self.route.lock().unwrap().len()
    }

    /// Connections accepted or adopted so far.
    pub fn accepted_connections(&self) -> u64 {
        self.accepted_total
    }

    /// Accept attempts that failed with an error.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors
    }

    /// Per-reactor counters as of each reactor's most recent epoch
    /// completion (reactors own their slabs, so live counters would
    /// mean cross-thread locking on the hot path).
    pub fn reactor_stats(&self) -> Vec<ReactorStats> {
        self.stats.clone()
    }

    /// Live connections across all reactors, as of each reactor's most
    /// recent epoch completion.
    pub fn connections(&self) -> usize {
        self.stats.iter().map(|s| s.connections).sum()
    }

    /// Hands the runtime an already-connected stream (switched to
    /// non-blocking mode), assigned to the next reactor round-robin.
    /// Safe mid-epoch: the reactor adopts it on its next sweep.
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    pub fn adopt(&mut self, mut conn: L::Conn) -> io::Result<()> {
        conn.prepare()?;
        self.accepted_total += 1;
        let _ = self.mates[self.next_reactor].send(ReactorMsg::Conn(conn));
        self.next_reactor = (self.next_reactor + 1) % self.mates.len();
        Ok(())
    }

    /// Accepts every connection currently waiting on the listener.
    /// Returns how many entered the runtime. The wait loops accept
    /// continuously; calling this directly is only needed to pre-accept
    /// before the first round.
    pub fn accept_pending(&mut self) -> usize {
        let mut accepted = 0;
        while let Some(listener) = self.listener.as_mut() {
            match listener.poll_accept() {
                Ok(Some(mut conn)) => {
                    if conn.prepare().is_ok() {
                        self.accepted_total += 1;
                        let _ = self.mates[self.next_reactor].send(ReactorMsg::Conn(conn));
                        self.next_reactor = (self.next_reactor + 1) % self.mates.len();
                        accepted += 1;
                    } else {
                        self.accept_errors += 1;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.accept_errors += 1;
                    break;
                }
            }
        }
        accepted
    }

    /// Submits one epoch round over `ids` and returns its ticket
    /// without waiting for settlement. When the pipeline window is
    /// already full, blocks — supervising accepts — until the oldest
    /// in-flight epoch completes.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued, nothing is submitted).
    pub fn submit_round(&mut self, ids: &[DeviceId], budget: Duration) -> Result<u64, FleetError> {
        // Validate and dedupe globally before any challenge is issued,
        // exactly as the scoped gateway does.
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        for &id in ids {
            if !self.fleet.is_registered(id) {
                return Err(FleetError::UnknownDevice(id));
            }
            if seen.insert(id) {
                order.push(id);
            }
        }

        while self.pending.len() >= self.depth {
            self.pump(true);
        }

        let n = self.mates.len();
        let mut partitions: Vec<Vec<DeviceId>> = (0..n)
            .map(|_| {
                let mut p = self.partition_pool.pop().unwrap_or_default();
                p.clear();
                p
            })
            .collect();
        for &id in &order {
            partitions[self.fleet.reactor_of(id, n)].push(id);
        }

        let epoch = self.next_epoch;
        self.next_epoch += 1;
        // Raised before any Begin is mailed, so no reactor can observe
        // its own empty partition settle and park while a sibling's
        // partition still needs this reactor's sockets.
        self.live_epochs.fetch_add(1, Ordering::Release);
        let started = Instant::now();
        for (mate, partition) in self.mates.iter().zip(partitions) {
            let _ = mate.send(ReactorMsg::Begin(RoundStart {
                epoch,
                partition,
                budget,
                started,
            }));
        }
        self.pending.push_back(PendingEpoch {
            epoch,
            order,
            partials: (0..n).map(|_| None).collect(),
            received: 0,
        });
        Ok(epoch)
    }

    /// Blocks — supervising accepts — until the epoch behind `ticket`
    /// has settled on every reactor, then merges its partial reports
    /// canonically (identical to the scoped gateway's merge: challenge
    /// order first, leftovers grouped by reactor index).
    ///
    /// Completions are cached, so tickets may be awaited in any order.
    ///
    /// # Errors
    ///
    /// The first reactor error for that epoch, or
    /// [`FleetError::UnknownDevice`] for a ticket never submitted.
    pub fn wait_round(&mut self, ticket: u64) -> Result<RoundReport, FleetError> {
        loop {
            if let Some(result) = self.merged.remove(&ticket) {
                return result;
            }
            if !self.pending.iter().any(|p| p.epoch == ticket) {
                return Err(FleetError::UnknownDevice(DeviceId(ticket)));
            }
            self.pump(true);
        }
    }

    /// Submits one round and waits for its report: the drop-in,
    /// depth-agnostic equivalent of
    /// [`MultiGateway::drive_round`](crate::MultiGateway::drive_round),
    /// minus the per-round thread spawns.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled.
    pub fn run_round(
        &mut self,
        ids: &[DeviceId],
        budget: Duration,
    ) -> Result<RoundReport, FleetError> {
        let ticket = self.submit_round(ids, budget)?;
        self.wait_round(ticket)
    }

    /// One supervision step: accept pending connections, absorb every
    /// epoch completion the reactors have mailed, and merge any epoch
    /// that is now fully reported. With `block`, sleeps in the done
    /// channel until *something* arrives — never spins: on a loaded
    /// (or single-core) host, a busy-waiting driver steals exactly the
    /// cycles the reactors need to finish the epoch it is waiting for.
    fn pump(&mut self, block: bool) {
        loop {
            let mut progressed = self.accept_pending() > 0;
            while let Ok(done) = self.done_rx.try_recv() {
                progressed = true;
                self.absorb_done(done);
            }
            self.merge_completed();
            if !block || progressed {
                return;
            }
            if self.listener.is_some() {
                // Accepts need supervising too: sleep in short slices,
                // sweeping the listener between them.
                match self.done_rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(done) => {
                        self.absorb_done(done);
                        self.merge_completed();
                        return;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            } else {
                // Nothing to accept: block outright. The reactors hold
                // the sending half for the runtime's whole life, and a
                // blocked wait here always has an epoch in flight
                // (`pending` non-empty), whose deadline bounds the
                // recv.
                match self.done_rx.recv() {
                    Ok(done) => {
                        self.absorb_done(done);
                        self.merge_completed();
                        return;
                    }
                    Err(_) => return,
                }
            }
        }
    }

    fn absorb_done(&mut self, done: EpochDone) {
        self.stats[done.reactor] = done.stats;
        if !done.cohort.is_empty() || done.cohort.capacity() > 0 {
            self.partition_pool.push(done.cohort);
        }
        if let Some(p) = self.pending.iter_mut().find(|p| p.epoch == done.epoch) {
            if p.partials[done.reactor].is_none() {
                p.received += 1;
                if p.complete() {
                    self.live_epochs.fetch_sub(1, Ordering::Release);
                }
            }
            p.partials[done.reactor] = Some(done.result);
        }
    }

    fn merge_completed(&mut self) {
        while let Some(front) = self.pending.front() {
            // Merge in submission order so `merged` grows oldest-first,
            // but any fully-reported epoch unblocks the window.
            if !front.complete() {
                break;
            }
            let p = self.pending.pop_front().expect("front just checked");
            self.merged.insert(p.epoch, Self::merge_epoch(p));
        }
        // Out-of-order completions (a deep pipeline where a later epoch
        // settles first) still cache, so wait_round(ticket) terminates.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].complete() {
                let p = self.pending.remove(i).expect("index in bounds");
                self.merged.insert(p.epoch, Self::merge_epoch(p));
            } else {
                i += 1;
            }
        }
    }

    fn merge_epoch(p: PendingEpoch) -> Result<RoundReport, FleetError> {
        let mut reports = Vec::with_capacity(p.partials.len());
        for partial in p.partials {
            reports.push(partial.expect("complete epochs have every partial")?);
        }
        Ok(merge_reports(&p.order, reports))
    }
}

impl<L: GatewayListener> Drop for FleetRuntime<L>
where
    L::Conn: Send + 'static,
{
    fn drop(&mut self) {
        // Detach first so no new batch can race the dying pool, then
        // shut the reactors down; their inboxes keep working until the
        // senders drop.
        self.fleet.detach_conclude_pool();
        for mate in &self.mates {
            let _ = mate.send(ReactorMsg::Shutdown);
        }
        self.mates.clear();
        for handle in self.reactor_handles.drain(..) {
            let _ = handle.join();
        }
        // With the registry detached and every reactor joined, no
        // sender remains; the workers' recv fails and they exit.
        for handle in self.pool_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One shared-pool worker: drain conclude jobs until every sender is
/// gone. The frame and registry handles are dropped *before* the reply
/// is sent so the dispatching reactor can reclaim its frame buffer
/// (`Arc::try_unwrap`) the moment the last reply lands.
fn run_pool_worker(jobs: &Arc<Mutex<Receiver<ConcludeJob>>>) {
    loop {
        let job = match jobs.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let ConcludeJob {
            fleet,
            frames,
            indices,
            reply,
        } = job;
        let verdicts: Vec<_> = indices
            .into_iter()
            .map(|i| (i, fleet.conclude(&frames[i])))
            .collect();
        drop(frames);
        drop(fleet);
        let _ = reply.send(verdicts);
    }
}

/// One persistent reactor thread: park on the inbox between epochs,
/// multiplex every in-flight epoch while there are any, and mail each
/// finished epoch's partial report to the driver.
///
/// Parking is gated on the *fleet-wide* `live` epoch count, not this
/// reactor's own: a connection adopted here can carry challenges and
/// responses for devices owned by a sibling reactor, so this reactor
/// must keep sweeping its sockets until every in-flight epoch — not
/// just its own partition — has reported.
#[allow(clippy::too_many_arguments)]
fn run_reactor_persistent<C: GatewayConn>(
    me: usize,
    reactors: usize,
    fleet: &Arc<FleetVerifier>,
    route: &Arc<Mutex<HashMap<DeviceId, Route>>>,
    mates: &[Sender<ReactorMsg<C>>],
    inbox: &Receiver<ReactorMsg<C>>,
    done: &Sender<EpochDone>,
    live: &Arc<AtomicUsize>,
    workers: usize,
) {
    let mut state: ReactorState<C> = ReactorState::new();
    let mut run = ReactorRun::new(me, reactors, fleet, &mut state, route, mates, workers);

    let mut idle_streak = 0u32;
    loop {
        if run.engines.is_empty()
            && run.pending_begins.is_empty()
            && !run.shutdown
            && live.load(Ordering::Acquire) == 0
        {
            // Park between rounds: the thread sleeps in `recv` until
            // the driver mails a round, a connection, or a shutdown.
            // Every submission mails a Begin to every reactor, so a
            // parked reactor always wakes when the fleet goes live.
            match inbox.recv() {
                Ok(msg) => run.absorb(msg),
                Err(_) => return, // the runtime is gone
            }
            idle_streak = 0;
        }
        run.progressed = false;
        run.drain_inbox(inbox);
        if run.shutdown {
            return;
        }
        for (epoch, error, cohort) in run.start_pending_epochs() {
            let _ = done.send(EpochDone {
                reactor: me,
                epoch,
                result: Err(error),
                cohort,
                stats: run.state.stats(),
            });
        }
        run.pump_transmits();
        run.sweep_reads();
        run.conclude_inbound();
        run.apply_charges();
        run.sync_membership_all();
        run.sweep_writes_and_reap();
        run.tick_all();
        for (epoch, report, cohort) in run.harvest_settled() {
            let _ = done.send(EpochDone {
                reactor: me,
                epoch,
                result: Ok(report),
                cohort,
                stats: run.state.stats(),
            });
        }
        if run.progressed {
            idle_streak = 0;
        } else {
            // Pace even with no local engines: the fleet is live
            // (otherwise we would have parked above), so this reactor
            // is only lending its sockets to siblings.
            idle_streak += 1;
            if idle_streak <= IDLE_YIELDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}
