//! The multi-peer gateway: one verifier endpoint, many concurrent
//! prover connections, one sans-IO [`RoundEngine`] judging them all.
//!
//! [`drive_round`](crate::stream::drive_round) serializes a whole
//! round through a single [`StreamTransport`](crate::StreamTransport)
//! — fine for one prover host, wrong for a fleet whose devices dial in
//! independently and answer whenever their real-time workloads allow.
//! [`FleetGateway`] is the missing layer: a std-only, non-blocking
//! readiness loop that owns a listening socket plus every accepted
//! connection, each with its own [`StreamDeframer`] and bounded
//! [`WriteQueue`]. Devices are **not pinned to a transport**: the
//! gateway learns which connection a device is behind from the frames
//! the device sends (see *routing* below), and delivers that device's
//! challenges there — so a prover host may carry one device or a
//! thousand, and may connect before or after the round begins.
//!
//! # Routing and hellos
//!
//! Every inbound [`Envelope`] names a device id, and the gateway
//! remembers "frames from device *d* arrived on connection *c*" (last
//! arrival wins). An envelope with an **empty payload** is a *hello*:
//! pure routing information, recorded and never judged —
//! [`announce_devices`](crate::stream::announce_devices) sends one per
//! hosted device right after connecting. Challenges for devices with no
//! known connection are parked until a hello (or any frame) reveals
//! one; a device that never connects simply expires at its deadline.
//!
//! # Lifecycle and failure
//!
//! Connections are serviced strictly without blocking: a partial write
//! leaves bytes in the connection's [`WriteQueue`] (`WouldBlock` is
//! backpressure, never a wedged loop), and a connection that hangs up,
//! breaks, overflows its write queue, floods the route map past
//! [`MAX_ROUTED_PER_CONN`], or poisons its deframer with an oversized
//! frame is dropped — every device whose challenge was *delivered* on
//! it and still owes this round a response is charged
//! [`FleetError::NoResponse`](crate::FleetError::NoResponse) on the
//! spot, because its path to the verifier is gone. Charging keys on
//! the delivery record rather than the (hello-controlled, last-wins)
//! route map, so a connection cannot falsify the verdict of a device
//! it never carried by announcing that device's id and hanging up.
//!
//! Wall-clock budgets map onto engine ticks exactly as in
//! [`drive_round`](crate::stream::drive_round): the clock lives in the
//! driver, the engine only ever sees [`LogicalTime`].

use crate::engine::{LogicalTime, RoundConfig, RoundEngine};
use crate::error::FleetError;
use crate::registry::FleetVerifier;
use crate::round::RoundReport;
use crate::stream::{pump_read, ReadPump, WritePump, WriteQueue};
use crate::DeviceId;
use apex_pox::wire::{frame_stream, Envelope, StreamDeframer};
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A peer byte stream the gateway can service without ever blocking on
/// it.
pub trait GatewayConn: Read + Write {
    /// Puts the stream into non-blocking mode (and applies any
    /// transport-specific tuning, like `TCP_NODELAY`). Called once when
    /// the connection enters the gateway.
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    fn prepare(&mut self) -> io::Result<()>;
}

impl GatewayConn for TcpStream {
    fn prepare(&mut self) -> io::Result<()> {
        self.set_nonblocking(true)?;
        // Challenges and evidence are small back-to-back frames; Nagle
        // + delayed ACKs would add ~40 ms per exchange.
        self.set_nodelay(true)
    }
}

#[cfg(unix)]
impl GatewayConn for std::os::unix::net::UnixStream {
    fn prepare(&mut self) -> io::Result<()> {
        self.set_nonblocking(true)
    }
}

/// A listening socket the gateway can poll without blocking.
pub trait GatewayListener {
    /// The accepted connection type.
    type Conn: GatewayConn;

    /// Puts the listener into non-blocking mode. Called once when the
    /// gateway takes ownership.
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    fn prepare(&mut self) -> io::Result<()>;

    /// Accepts one pending connection, or `None` when nobody is
    /// waiting right now.
    ///
    /// # Errors
    ///
    /// Any accept error other than "no connection pending".
    fn poll_accept(&mut self) -> io::Result<Option<Self::Conn>>;
}

impl GatewayListener for TcpListener {
    type Conn = TcpStream;

    fn prepare(&mut self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn poll_accept(&mut self) -> io::Result<Option<TcpStream>> {
        match self.accept() {
            Ok((conn, _)) => Ok(Some(conn)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(unix)]
impl GatewayListener for std::os::unix::net::UnixListener {
    type Conn = std::os::unix::net::UnixStream;

    fn prepare(&mut self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn poll_accept(&mut self) -> io::Result<Option<Self::Conn>> {
        match self.accept() {
            Ok((conn, _)) => Ok(Some(conn)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// The "nobody ever dials in" listener, for gateways fed purely through
/// [`FleetGateway::adopt`] — socketpair fabrics in tests and benches.
pub struct NoListener<C>(PhantomData<C>);

impl<C: GatewayConn> GatewayListener for NoListener<C> {
    type Conn = C;

    fn prepare(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn poll_accept(&mut self) -> io::Result<Option<C>> {
        Ok(None)
    }
}

/// One accepted prover connection: its stream, receive framing state,
/// and bounded transmit queue. Shared with the multi-reactor gateway
/// ([`crate::reactor`]), whose per-reactor connection slabs hold the
/// same peers.
pub(crate) struct Peer<C> {
    pub(crate) stream: C,
    pub(crate) deframer: StreamDeframer,
    pub(crate) outbox: WriteQueue,
    /// Devices currently routed to this connection, bounded by
    /// [`MAX_ROUTED_PER_CONN`] so a hostile peer cannot grow the route
    /// map without bound by announcing fabricated ids.
    pub(crate) routed: usize,
    /// Set when the connection must be reaped: EOF, I/O error, a
    /// poisoned deframer, an overflowing write queue, or a route flood.
    pub(crate) dead: bool,
}

impl<C: GatewayConn> Peer<C> {
    pub(crate) fn new(stream: C) -> Peer<C> {
        Peer {
            stream,
            deframer: StreamDeframer::new(),
            outbox: WriteQueue::default(),
            routed: 0,
            dead: false,
        }
    }
}

/// How many devices one connection may claim to host. Real prover
/// hosts carrying thousands of devices fit comfortably; a peer
/// streaming fabricated hellos to bloat the route map is dropped when
/// it crosses the bound.
pub const MAX_ROUTED_PER_CONN: usize = 4096;

/// What one [`GatewayRound::poll`] sweep accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayPoll {
    /// Every challenged device has settled: call
    /// [`GatewayRound::finish`].
    Settled,
    /// I/O moved (accepts, reads, writes or verdicts): sweep again
    /// immediately.
    Progressed,
    /// Nothing happened: the caller may yield or sleep before the next
    /// sweep.
    Idle,
}

/// A poll-driven verifier endpoint multiplexing many prover
/// connections into one [`RoundEngine`].
///
/// See the [module docs](self) for the routing and lifecycle story.
/// The gateway is long-lived: connections and device routes persist
/// across rounds, so consecutive [`drive_round`](FleetGateway::drive_round)
/// calls reuse whatever fleet is still connected.
pub struct FleetGateway<L: GatewayListener> {
    listener: Option<L>,
    /// Slot map of live connections; indices are stable for the life of
    /// a connection, so `route` can point into it.
    conns: Vec<Option<Peer<L::Conn>>>,
    /// Which connection each device was last heard from on.
    route: HashMap<DeviceId, usize>,
    /// Framed challenge bytes for devices with no known connection yet,
    /// at most one per device (a re-challenge supersedes the session,
    /// so delivering anything but the latest would only manufacture a
    /// `BadMac`). Cleared at every round start.
    parked: HashMap<DeviceId, Vec<u8>>,
    /// Which connection each device's challenge was actually *sent* on
    /// this round. A dying connection is charged only for these — a
    /// hello from some other connection claiming the device's id moves
    /// the `route`, but must not let that connection's death falsify
    /// the verdict of a device it never carried. Cleared at every
    /// round start.
    delivered: HashMap<DeviceId, usize>,
    accepted_total: u64,
    dropped_total: u64,
    accept_errors: u64,
    /// Hello frames naming a device the registry has never enrolled —
    /// routed (the device may be enrolled later) but counted, so an
    /// operator can see fabricated or premature announcements instead
    /// of silent acceptance.
    unknown_hellos: u64,
}

impl FleetGateway<TcpListener> {
    /// Binds a TCP listener and wraps it in a gateway.
    ///
    /// # Errors
    ///
    /// Any bind/configure error from the socket layer.
    pub fn bind_tcp(addr: impl std::net::ToSocketAddrs) -> io::Result<FleetGateway<TcpListener>> {
        FleetGateway::over(TcpListener::bind(addr)?)
    }
}

#[cfg(unix)]
impl FleetGateway<std::os::unix::net::UnixListener> {
    /// Binds a Unix-domain listener and wraps it in a gateway.
    ///
    /// # Errors
    ///
    /// Any bind/configure error from the socket layer.
    pub fn bind_uds(
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<FleetGateway<std::os::unix::net::UnixListener>> {
        FleetGateway::over(std::os::unix::net::UnixListener::bind(path)?)
    }
}

impl<C: GatewayConn> FleetGateway<NoListener<C>> {
    /// A gateway with no listening socket: every connection enters via
    /// [`adopt`](FleetGateway::adopt). The vehicle for socketpair
    /// fabrics in tests and benches.
    pub fn detached() -> FleetGateway<NoListener<C>> {
        FleetGateway {
            listener: None,
            conns: Vec::new(),
            route: HashMap::new(),
            parked: HashMap::new(),
            delivered: HashMap::new(),
            accepted_total: 0,
            dropped_total: 0,
            accept_errors: 0,
            unknown_hellos: 0,
        }
    }
}

impl<L: GatewayListener> FleetGateway<L> {
    /// Takes ownership of a listening socket (switched to non-blocking
    /// mode) and serves connections accepted from it.
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    pub fn over(mut listener: L) -> io::Result<FleetGateway<L>> {
        listener.prepare()?;
        Ok(FleetGateway {
            listener: Some(listener),
            conns: Vec::new(),
            route: HashMap::new(),
            parked: HashMap::new(),
            delivered: HashMap::new(),
            accepted_total: 0,
            dropped_total: 0,
            accept_errors: 0,
            unknown_hellos: 0,
        })
    }

    /// The owned listener, for callers that need its identity — say,
    /// the ephemeral port a `bind_tcp("127.0.0.1:0")` gateway landed
    /// on.
    pub fn listener(&self) -> Option<&L> {
        self.listener.as_ref()
    }

    /// Hands the gateway an already-connected stream (switched to
    /// non-blocking mode), exactly as if the listener had accepted it.
    ///
    /// # Errors
    ///
    /// Any configure error from the socket layer.
    pub fn adopt(&mut self, mut conn: L::Conn) -> io::Result<()> {
        conn.prepare()?;
        self.accepted_total += 1;
        let peer = Peer::new(conn);
        match self.conns.iter().position(Option::is_none) {
            Some(idx) => self.conns[idx] = Some(peer),
            None => self.conns.push(Some(peer)),
        }
        Ok(())
    }

    /// Accepts every connection currently waiting on the listener.
    /// Returns how many entered the gateway.
    ///
    /// Rounds do this on every sweep; calling it directly is only
    /// needed to pre-accept connections before a round begins.
    ///
    /// # Errors
    ///
    /// Any accept/configure error from the socket layer (also counted
    /// in [`accept_errors`](FleetGateway::accept_errors), since round
    /// sweeps retry rather than abort on them).
    pub fn accept_pending(&mut self) -> io::Result<usize> {
        let mut accepted = 0;
        while let Some(listener) = self.listener.as_mut() {
            let pending = match listener.poll_accept() {
                Ok(pending) => pending,
                Err(e) => {
                    self.accept_errors += 1;
                    return Err(e);
                }
            };
            match pending {
                Some(conn) => {
                    if let Err(e) = self.adopt(conn) {
                        self.accept_errors += 1;
                        return Err(e);
                    }
                    accepted += 1;
                }
                None => break,
            }
        }
        Ok(accepted)
    }

    /// Number of live connections.
    pub fn connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Number of devices with a known connection.
    pub fn routed_devices(&self) -> usize {
        self.route.len()
    }

    /// Connections dropped so far (hangups, I/O errors, poisoned
    /// framing, overflowed write queues).
    pub fn dropped_connections(&self) -> u64 {
        self.dropped_total
    }

    /// Connections accepted or adopted so far.
    pub fn accepted_connections(&self) -> u64 {
        self.accepted_total
    }

    /// Accept attempts that failed with an error (fd exhaustion, a
    /// broken listener, …). Round sweeps keep sweeping through these —
    /// affected provers simply expire by deadline — so a growing count
    /// here is the operator's signal that the *listener*, not the
    /// fleet, is unhealthy.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors
    }

    /// Hello frames received for devices the registry has never seen.
    /// The hello still routes (enrollment may be seconds away and the
    /// parked-challenge path wants the route), but each one is counted
    /// here — the fleet-level `UnknownDevice` signal for announcements,
    /// mirroring the [`FleetError::UnknownDevice`] verdict evidence
    /// frames already get.
    pub fn unknown_device_hellos(&self) -> u64 {
        self.unknown_hellos
    }

    /// Queues one challenge frame towards `device`: onto its routed
    /// connection when one is live, parked until a hello otherwise.
    /// Deliveries are recorded in `delivered`, which is what hangup
    /// charging keys on.
    fn route_transmit(&mut self, device: DeviceId, frame: &[u8]) {
        let framed = frame_stream(frame);
        match self.route.get(&device) {
            Some(&idx) if self.conns[idx].as_ref().is_some_and(|p| !p.dead) => {
                let peer = self.conns[idx].as_mut().expect("checked above");
                if peer.outbox.enqueue(&framed) {
                    self.delivered.insert(device, idx);
                } else {
                    peer.dead = true; // not draining: wedged or hostile
                    self.parked.insert(device, framed);
                }
            }
            _ => {
                self.parked.insert(device, framed);
            }
        }
    }

    /// Records "device `id` was heard on connection `idx`" (last
    /// arrival wins), maintaining the per-connection route count and
    /// dropping a peer that floods past [`MAX_ROUTED_PER_CONN`].
    fn record_route(&mut self, id: DeviceId, idx: usize) {
        let previous = self.route.insert(id, idx);
        if previous == Some(idx) {
            return;
        }
        if let Some(prev) = previous {
            if let Some(peer) = self.conns[prev].as_mut() {
                peer.routed = peer.routed.saturating_sub(1);
            }
        }
        let peer = self.conns[idx].as_mut().expect("live peer");
        peer.routed += 1;
        if peer.routed > MAX_ROUTED_PER_CONN {
            peer.dead = true;
        }
    }

    /// Pumps every connection's receive side: drains complete frames,
    /// records routes, delivers parked challenges to devices that just
    /// revealed their connection, and collects every judgeable frame.
    /// Hellos naming devices `fleet` never enrolled are counted in
    /// [`unknown_device_hellos`](FleetGateway::unknown_device_hellos).
    /// Returns the frames in arrival order plus whether any I/O moved.
    fn sweep_reads(&mut self, fleet: &FleetVerifier, inbound: &mut Vec<Vec<u8>>) -> bool {
        let mut progressed = false;
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_none() {
                continue;
            }
            loop {
                let peer = self.conns[idx].as_mut().expect("slot checked live");
                if peer.dead {
                    break;
                }
                match peer.deframer.next_frame() {
                    Ok(Some(frame)) => {
                        progressed = true;
                        match Envelope::from_bytes(&frame) {
                            Ok(envelope) => {
                                let id = DeviceId(envelope.device_id);
                                self.record_route(id, idx);
                                if let Some(parked) = self.parked.remove(&id) {
                                    let peer = self.conns[idx].as_mut().expect("live peer");
                                    if peer.outbox.enqueue(&parked) {
                                        self.delivered.insert(id, idx);
                                    } else {
                                        peer.dead = true; // not draining: wedged
                                                          // Re-park: the device may yet
                                                          // hello on a healthier
                                                          // connection before its
                                                          // deadline.
                                        self.parked.insert(id, parked);
                                    }
                                }
                                // A hello (empty payload) is routing
                                // information only; anything else is
                                // evidence for the engine.
                                if envelope.payload.is_empty() {
                                    if !fleet.is_registered(id) {
                                        self.unknown_hellos += 1;
                                    }
                                } else {
                                    inbound.push(frame);
                                }
                            }
                            // Unattributable frames still go to the
                            // engine: the round records them as `Frame`
                            // outcomes, it just cannot route by them.
                            Err(_) => inbound.push(frame),
                        }
                    }
                    Ok(None) => match pump_read(&mut peer.stream, &mut peer.deframer) {
                        ReadPump::Bytes(_) => progressed = true,
                        ReadPump::Idle => break,
                        ReadPump::Closed | ReadPump::Broken => {
                            peer.dead = true;
                            break;
                        }
                    },
                    // Oversized length prefix: frame boundaries are
                    // lost for good — the sticky error drops the
                    // connection.
                    Err(_) => {
                        peer.dead = true;
                        break;
                    }
                }
            }
        }
        progressed
    }

    /// Flushes every connection's write queue, then reaps dead
    /// connections: routes through them are forgotten, and every device
    /// whose challenge was *delivered* on them and is still awaited by
    /// `engine` is charged [`FleetError::NoResponse`] — its path to the
    /// verifier is gone. (Merely being *routed* there is not enough: a
    /// hello from another connection claiming the device's id moves the
    /// route, and that connection's death must not falsify the verdict
    /// of a device it never carried.) Returns whether any I/O or
    /// verdict moved.
    fn sweep_writes_and_reap(&mut self, engine: &mut RoundEngine<'_>) -> bool {
        let mut progressed = false;
        for idx in 0..self.conns.len() {
            let Some(peer) = self.conns[idx].as_mut() else {
                continue;
            };
            if !peer.dead {
                match peer.outbox.flush(&mut peer.stream) {
                    WritePump::Drained => {}
                    WritePump::Blocked(wrote) => progressed |= wrote > 0,
                    WritePump::Closed | WritePump::Broken => peer.dead = true,
                }
            }
            if peer.dead {
                progressed = true;
                self.conns[idx] = None;
                self.dropped_total += 1;
                self.route.retain(|_, &mut conn| conn != idx);
                let carried: Vec<DeviceId> = self
                    .delivered
                    .iter()
                    .filter(|&(_, &conn)| conn == idx)
                    .map(|(&id, _)| id)
                    .collect();
                for id in carried {
                    self.delivered.remove(&id);
                    engine.charge_no_response(id);
                }
            }
        }
        progressed
    }
}

/// One round in flight over a [`FleetGateway`]: the engine, plus the
/// wall clock that maps elapsed milliseconds onto its ticks.
///
/// [`FleetGateway::drive_round`] (or
/// [`FleetVerifier::run_round_gateway`]) wraps this in a ready-made
/// loop; drive it by hand when the same thread must also do other work
/// between sweeps — a simulation harness playing both sides, a service
/// with its own scheduler.
pub struct GatewayRound<'a> {
    engine: RoundEngine<'a>,
    started: Instant,
}

impl<'a> GatewayRound<'a> {
    /// Starts a round: issues one fresh challenge per device and
    /// discards the previous round's residue — parked challenge frames
    /// (their sessions are superseded), the delivery record, and any
    /// connection whose write queue still holds undelivered bytes (its
    /// peer stopped draining a round ago; flushing the remainder now
    /// would deliver a stale challenge whose answer can only be a
    /// `BadMac`). Challenges reach the wire on the following
    /// [`poll`](GatewayRound::poll) sweeps, as routes allow.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] before any challenge is issued.
    pub fn begin<L: GatewayListener>(
        fleet: &'a FleetVerifier,
        ids: &[DeviceId],
        gateway: &mut FleetGateway<L>,
        budget: Duration,
    ) -> Result<GatewayRound<'a>, FleetError> {
        gateway.parked.clear();
        gateway.delivered.clear();
        for peer in gateway.conns.iter_mut().flatten() {
            if !peer.outbox.is_empty() {
                peer.dead = true; // wedged since last round
            }
        }
        let engine = RoundEngine::begin(fleet, ids, RoundConfig::realtime(budget))?;
        Ok(GatewayRound {
            engine,
            started: Instant::now(),
        })
    }

    /// One readiness sweep: route queued challenges, accept waiting
    /// connections, pump every receive side, judge the arrived frames
    /// (batched onto the MAC worker pool when the sweep was busy),
    /// flush every transmit side, reap dead connections, and advance
    /// the engine clock to the elapsed wall time.
    pub fn poll<L: GatewayListener>(&mut self, gateway: &mut FleetGateway<L>) -> GatewayPoll {
        let mut progressed = false;

        while let Some((device, frame)) = self.engine.poll_transmit() {
            gateway.route_transmit(device, &frame);
            progressed = true;
        }
        progressed |= gateway.accept_pending().unwrap_or(0) > 0;

        let mut inbound = Vec::new();
        progressed |= gateway.sweep_reads(self.engine.fleet(), &mut inbound);
        if !inbound.is_empty() {
            progressed = true;
            for (device, result) in self.engine.fleet().conclude_batch(&inbound) {
                self.engine.outcome_received(device, result);
            }
        }

        // Devices evicted from the registry mid-round settle now, as
        // `Evicted` — never left dangling toward a `NoResponse`
        // deadline.
        progressed |= self.engine.sync_membership() > 0;

        progressed |= gateway.sweep_writes_and_reap(&mut self.engine);

        self.engine
            .tick(LogicalTime(self.started.elapsed().as_millis() as u64));

        if self.engine.is_settled() {
            GatewayPoll::Settled
        } else if progressed {
            GatewayPoll::Progressed
        } else {
            GatewayPoll::Idle
        }
    }

    /// Challenged devices not yet settled.
    pub fn awaiting(&self) -> usize {
        self.engine.awaiting()
    }

    /// Consumes the round into its report; devices still awaiting are
    /// charged [`FleetError::NoResponse`], so no round leaks sessions.
    pub fn finish(self) -> RoundReport {
        self.engine.into_report()
    }
}

impl<L: GatewayListener> FleetGateway<L> {
    /// Drives one full round to settlement: sweeps while I/O moves,
    /// yields briefly when it does not, and maps the wall-clock
    /// `budget` onto engine ticks so silent devices expire exactly as
    /// under [`drive_round`](crate::stream::drive_round).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when an id is not enrolled (no
    /// challenge is issued in that case).
    pub fn drive_round(
        &mut self,
        fleet: &FleetVerifier,
        ids: &[DeviceId],
        budget: Duration,
    ) -> Result<RoundReport, FleetError> {
        /// Idle sweeps that merely yield before the loop starts
        /// sleeping: keeps hot rounds fast without burning a core
        /// through a long silent deadline.
        const IDLE_YIELDS: u32 = 64;

        let mut round = GatewayRound::begin(fleet, ids, self, budget)?;
        let mut idle_streak = 0u32;
        loop {
            match round.poll(self) {
                GatewayPoll::Settled => return Ok(round.finish()),
                GatewayPoll::Progressed => idle_streak = 0,
                GatewayPoll::Idle => {
                    idle_streak += 1;
                    if idle_streak <= IDLE_YIELDS {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
    }
}
