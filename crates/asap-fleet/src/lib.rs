//! # asap-fleet — PoX verification at fleet scale
//!
//! The paper's protocol is one verifier talking to one MCU. This crate
//! is everything above that single session: identity, concurrency,
//! batching and transport for a verifier that manages *many* provers at
//! once.
//!
//! * [`DeviceId`] — a 64-bit fleet-wide prover identity, carried on the
//!   wire by the [`apex_pox::wire::Envelope`] frame;
//! * [`FleetVerifier`] — one [`asap::AsapVerifier`] per device behind a
//!   fixed array of independently locked shards, so sessions on
//!   different devices never contend ([`registry`]);
//! * batched rounds — [`FleetVerifier::begin_round`] issues a challenge
//!   per device, [`FleetVerifier::conclude_round`] judges every
//!   response with per-device isolation: one garbled or forged frame
//!   rejects that device alone, never the round ([`round`]);
//! * [`Transport`] — the delivery abstraction, with the in-memory
//!   [`Loopback`] implementation wired to real simulated devices
//!   ([`transport`]).
//!
//! # Fleet quickstart
//!
//! One image, two provers, one batched round over the loopback
//! transport:
//!
//! ```
//! use asap::{programs, Device, PoxMode, VerifierSpec};
//! use asap_fleet::{DeviceId, FleetVerifier, Loopback};
//!
//! let image = programs::fig4_authorized()?;
//! let fleet = FleetVerifier::new();
//! let mut fabric = Loopback::new();
//!
//! for raw in 1u64..=2 {
//!     let id = DeviceId(raw);
//!     let key = raw.to_le_bytes();
//!
//!     // Prover: a real simulated MCU that runs the image to completion.
//!     let mut device = Device::builder(&image).key(&key).build()?;
//!     device.run_until_pc(programs::done_pc(), 10_000);
//!     fabric.attach(id, device);
//!
//!     // Verifier side: expectations derived from the same image.
//!     fleet.register(id, &key, VerifierSpec::from_image(&image)?.mode(PoxMode::Asap))?;
//! }
//!
//! let ids = [DeviceId(1), DeviceId(2)];
//! let report = fleet.run_round(&ids, &mut fabric)?;
//! assert_eq!(report.verified(), 2);
//! assert_eq!(fleet.in_flight(), 0, "rounds never leak sessions");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod registry;
pub mod round;
pub mod transport;

pub use error::FleetError;
pub use registry::{FleetVerifier, SHARD_COUNT};
pub use round::{RoundOutcome, RoundReport};
pub use transport::{Loopback, Transport};

use std::fmt;

/// A fleet-wide prover identity.
///
/// Purely administrative: the id routes frames and keys the registry,
/// while all authentication comes from the per-device key inside the
/// MAC. Ids are carried on the wire by [`apex_pox::wire::Envelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap::{programs, AsapError, Device, PoxMode, VerifierSpec};

    fn key_for(id: DeviceId) -> Vec<u8> {
        format!("key-{id}").into_bytes()
    }

    /// A fleet of `n` ASAP devices, enrolled and run to completion.
    fn fleet_of(n: u64) -> (FleetVerifier, Loopback) {
        let image = programs::fig4_authorized().unwrap();
        let fleet = FleetVerifier::new();
        let mut fabric = Loopback::new();
        for raw in 1..=n {
            let id = DeviceId(raw);
            let mut device = Device::builder(&image).key(&key_for(id)).build().unwrap();
            assert!(device.run_until_pc(programs::done_pc(), 10_000));
            fabric.attach(id, device);
            fleet
                .register(
                    id,
                    &key_for(id),
                    VerifierSpec::from_image(&image)
                        .unwrap()
                        .mode(PoxMode::Asap),
                )
                .unwrap();
        }
        (fleet, fabric)
    }

    #[test]
    fn honest_round_verifies_every_device() {
        let (fleet, mut fabric) = fleet_of(5);
        let ids: Vec<DeviceId> = (1..=5).map(DeviceId).collect();
        let report = fleet.run_round(&ids, &mut fabric).unwrap();
        assert_eq!(report.verified(), 5);
        assert_eq!(report.rejected(), 0);
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn duplicate_and_unknown_devices_are_typed_errors() {
        let (fleet, _) = fleet_of(1);
        let image = programs::fig4_authorized().unwrap();
        assert_eq!(
            fleet.register(DeviceId(1), b"k", VerifierSpec::from_image(&image).unwrap()),
            Err(FleetError::DuplicateDevice(DeviceId(1)))
        );
        assert_eq!(
            fleet.begin(DeviceId(99)),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
        assert_eq!(
            fleet.begin_round(&[DeviceId(1), DeviceId(99)]),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
        assert_eq!(fleet.in_flight(), 0, "failed round issues no challenges");
    }

    #[test]
    fn evidence_without_a_challenge_is_no_session() {
        let (fleet, mut fabric) = fleet_of(1);
        let id = DeviceId(1);
        // Obtain a valid response frame, conclude it…
        let req = fleet.begin(id).unwrap();
        let resp = fabric.exchange(id, &req).unwrap();
        let (device, result) = fleet.conclude(&resp);
        assert_eq!(device, Some(id));
        assert!(result.is_ok());
        // …then feed the same frame again: fleet-level replay.
        let (device, result) = fleet.conclude(&resp);
        assert_eq!(device, Some(id));
        assert_eq!(result, Err(FleetError::NoSession(id)));
    }

    #[test]
    fn rechallenge_makes_prior_evidence_stale() {
        let (fleet, mut fabric) = fleet_of(1);
        let id = DeviceId(1);
        let stale_req = fleet.begin(id).unwrap();
        let stale_resp = fabric.exchange(id, &stale_req).unwrap();
        // Re-challenge before concluding: the old challenge is dead.
        let _fresh_req = fleet.begin(id).unwrap();
        assert_eq!(fleet.in_flight(), 1, "re-begin replaces, never stacks");
        let (_, result) = fleet.conclude(&stale_resp);
        assert_eq!(result, Err(FleetError::Rejected(AsapError::BadMac)));
    }

    #[test]
    fn duplicated_ids_are_challenged_once() {
        let (fleet, mut fabric) = fleet_of(2);
        let (a, b) = (DeviceId(1), DeviceId(2));
        // Listing a device twice must not stale its own challenge.
        let report = fleet.run_round(&[a, a, b], &mut fabric).unwrap();
        assert_eq!(report.verified(), 2);
        assert_eq!(report.outcomes.len(), 2, "one verdict per device");
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn one_bad_frame_never_poisons_the_round() {
        let (fleet, mut fabric) = fleet_of(3);
        let ids: Vec<DeviceId> = (1..=3).map(DeviceId).collect();
        let requests = fleet.begin_round(&ids).unwrap();
        let mut frames: Vec<Vec<u8>> = requests
            .iter()
            .map(|(id, req)| fabric.exchange(*id, req).unwrap())
            .collect();
        frames[1][0] ^= 0xFF; // destroy device 2's envelope magic
        let report = fleet.conclude_round(&ids, &frames);
        assert_eq!(report.verified(), 2, "devices 1 and 3 still verify");
        // The broken frame is unattributable; device 2's dangling
        // session is charged as NoResponse.
        assert_eq!(report.dropped(), 1);
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn misrouted_envelope_is_rejected_not_cross_verified() {
        let (fleet, mut fabric) = fleet_of(2);
        let (a, b) = (DeviceId(1), DeviceId(2));
        let requests = fleet.begin_round(&[a, b]).unwrap();
        let resp_a = fabric.exchange(a, &requests[0].1).unwrap();
        let payload_a = apex_pox::wire::Envelope::from_bytes(&resp_a)
            .unwrap()
            .payload;
        // Device 1's honest evidence, re-addressed as device 2's.
        let forged = apex_pox::wire::Envelope::wrap(b.0, payload_a).to_bytes();
        let (device, result) = fleet.conclude(&forged);
        assert_eq!(device, Some(b));
        assert_eq!(result, Err(FleetError::Rejected(AsapError::BadMac)));
    }

    #[test]
    fn shards_serve_concurrent_threads() {
        use std::sync::Arc;

        // The simulated Device is deliberately not Send (it models one
        // physical MCU), so exchanges happen here; issuance and
        // conclusion hit the shared registry from four threads.
        let (fleet, mut fabric) = fleet_of(32);
        let fleet = Arc::new(fleet);

        let issue: Vec<_> = (0..4u64)
            .map(|t| {
                let fleet = Arc::clone(&fleet);
                std::thread::spawn(move || {
                    (1 + t..=32)
                        .step_by(4)
                        .map(|raw| (DeviceId(raw), fleet.begin(DeviceId(raw)).unwrap()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let requests: Vec<(DeviceId, Vec<u8>)> =
            issue.into_iter().flat_map(|h| h.join().unwrap()).collect();
        assert_eq!(fleet.in_flight(), 32);

        let responses: Vec<Vec<u8>> = requests
            .iter()
            .map(|(id, req)| fabric.exchange(*id, req).unwrap())
            .collect();

        let conclude: Vec<_> = responses
            .chunks(8)
            .map(|chunk| {
                let fleet = Arc::clone(&fleet);
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for frame in &chunk {
                        let (device, result) = fleet.conclude(frame);
                        assert!(device.is_some());
                        result.unwrap();
                    }
                })
            })
            .collect();
        for h in conclude {
            h.join().unwrap();
        }
        assert_eq!(fleet.in_flight(), 0);
    }
}
