//! # asap-fleet — PoX verification at fleet scale
//!
//! The paper's protocol is one verifier talking to one MCU. This crate
//! is everything above that single session: identity, concurrency,
//! batching and transport for a verifier that manages *many* provers at
//! once.
//!
//! * [`DeviceId`] — a 64-bit fleet-wide prover identity, carried on the
//!   wire by the [`apex_pox::wire::Envelope`] frame;
//! * [`FleetVerifier`] — one [`asap::AsapVerifier`] per device behind a
//!   fixed array of independently locked shards, so sessions on
//!   different devices never contend; large frame batches verify their
//!   MACs on a [`std::thread::scope`] worker pool
//!   ([`FleetVerifier::conclude_batch`], [`registry`]);
//! * [`RoundEngine`] — the whole round protocol as a **sans-IO state
//!   machine** ([`engine`]): feed it events (`frame_received`, `tick`
//!   on injected [`LogicalTime`]), drain actions (`poll_transmit`,
//!   `poll_outcome`). No I/O, no threads, no clocks — identical event
//!   schedules give identical [`RoundReport`]s, and a slow prover never
//!   stalls the round: its deadline just expires;
//! * batched rounds — [`FleetVerifier::begin_round`] /
//!   [`FleetVerifier::conclude_round`] / [`FleetVerifier::run_round`]
//!   are thin lock-step drivers over the engine, judging every response
//!   with per-device isolation: one garbled or forged frame rejects
//!   that device alone, never the round ([`round`]);
//! * [`Transport`] — the non-blocking byte pump (`send` / `try_recv`)
//!   any delivery fabric implements: the in-memory [`Loopback`] wired
//!   to real simulated devices ([`transport`]), and the framed TCP/UDS
//!   [`StreamTransport`] for provers in other processes or hosts
//!   ([`stream`]).
//!
//! # Three driving modes
//!
//! Everything real-time funnels into the same engine through one of
//! three drivers:
//!
//! 1. **Single-peer** — [`drive_round`] pumps one [`Transport`]
//!    (usually a [`StreamTransport`]) against a wall-clock budget:
//!    right when one prover host carries the whole fleet behind a
//!    single stream, or in tests and benches. The whole round
//!    serializes through that one connection.
//! 2. **Multi-peer** — [`FleetGateway`] ([`gateway`]) owns a listening
//!    socket plus every accepted prover connection, each with its own
//!    deframer and bounded write queue, serviced by a poll-driven
//!    readiness loop that never blocks on any one peer. Devices are
//!    routed by the hello frames they announce themselves with
//!    ([`announce_devices`]), not pinned to a transport; a hangup or
//!    poisoned connection charges its still-awaited devices
//!    [`FleetError::NoResponse`] immediately. Drive it with
//!    [`FleetVerifier::run_round_gateway`], or sweep-by-sweep via
//!    [`GatewayRound`] when the caller interleaves its own work.
//! 3. **Multi-reactor** — [`MultiGateway`] ([`reactor`]) shards the
//!    gateway round across N reactor threads: each owns a disjoint
//!    slab of connections plus its own engine partition over the
//!    sharded registry ([`FleetVerifier::reactor_of`]), the calling
//!    thread supervises accepts and settlement, and the per-reactor
//!    partial reports merge into one canonical [`RoundReport`]
//!    independent of thread interleaving. This is the driver that
//!    saturates a many-core verifier host.
//!
//! All map elapsed wall-clock milliseconds onto engine ticks, so the
//! verdict semantics — deadlines, late frames, per-device isolation —
//! are identical; only the fan-in differs. Budgets round **up** to
//! whole-millisecond ticks and never below one tick
//! ([`RoundConfig::realtime`]): a sub-millisecond budget means "one
//! tick", not "expire everyone before the first read".
//!
//! # Fleet quickstart
//!
//! One image, two provers, one batched round over the loopback
//! transport (`run_round` drives the engine lock-step; see
//! `examples/fleet_socket.rs` for the same round over a real socket):
//!
//! ```
//! use asap::{programs, Device, PoxMode, VerifierSpec};
//! use asap_fleet::{DeviceId, FleetVerifier, Loopback};
//!
//! let image = programs::fig4_authorized()?;
//! let fleet = FleetVerifier::new();
//! let mut fabric = Loopback::new();
//!
//! for raw in 1u64..=2 {
//!     let id = DeviceId(raw);
//!     let key = raw.to_le_bytes();
//!
//!     // Prover: a real simulated MCU that runs the image to completion.
//!     let mut device = Device::builder(&image).key(&key).build()?;
//!     device.run_until_pc(programs::done_pc(), 10_000);
//!     fabric.attach(id, device);
//!
//!     // Verifier side: expectations derived from the same image.
//!     fleet.register(id, &key, VerifierSpec::from_image(&image)?.mode(PoxMode::Asap))?;
//! }
//!
//! let ids = [DeviceId(1), DeviceId(2)];
//! let report = fleet.run_round(&ids, &mut fabric)?;
//! assert_eq!(report.verified(), 2);
//! assert_eq!(fleet.in_flight(), 0, "rounds never leak sessions");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Driving the engine by hand
//!
//! The engine makes asynchrony explicit: here device 2's response is
//! delivered *out of order* and device 1 never answers, resolved purely
//! by a tick — no sleeps anywhere:
//!
//! ```
//! use asap::{programs, Device, PoxMode, VerifierSpec};
//! use asap_fleet::{DeviceId, FleetVerifier, LogicalTime, Loopback, RoundConfig, RoundEngine};
//!
//! # let image = programs::fig4_authorized()?;
//! # let fleet = FleetVerifier::new();
//! # let mut fabric = Loopback::new();
//! # for raw in 1u64..=2 {
//! #     let id = DeviceId(raw);
//! #     let key = raw.to_le_bytes();
//! #     let mut device = Device::builder(&image).key(&key).build()?;
//! #     device.run_until_pc(programs::done_pc(), 10_000);
//! #     fabric.attach(id, device);
//! #     fleet.register(id, &key, VerifierSpec::from_image(&image)?.mode(PoxMode::Asap))?;
//! # }
//! let ids = [DeviceId(1), DeviceId(2)];
//! let mut engine = RoundEngine::begin(&fleet, &ids, RoundConfig::new(LogicalTime(0), 10))?;
//!
//! // Pump requests out; keep device 2's response, "lose" device 1's.
//! let mut responses = Vec::new();
//! while let Some((id, frame)) = engine.poll_transmit() {
//!     if id == DeviceId(2) {
//!         responses.extend(fabric.exchange(id, &frame));
//!     }
//! }
//! engine.tick(LogicalTime(7));                  // time passes…
//! for frame in &responses {
//!     engine.frame_received(frame);             // …device 2 answers late
//! }
//! engine.tick(LogicalTime(10));                 // device 1's deadline
//!
//! let report = engine.into_report();
//! assert!(report.of(DeviceId(2)).unwrap().is_ok());
//! assert_eq!(
//!     report.of(DeviceId(1)),
//!     Some(&Err(asap_fleet::FleetError::NoResponse(DeviceId(1))))
//! );
//! assert_eq!(fleet.in_flight(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod error;
pub mod gateway;
pub mod lifecycle;
pub mod reactor;
pub mod registry;
pub mod round;
pub mod runtime;
pub mod stream;
pub mod transport;

pub use engine::{LogicalTime, RoundConfig, RoundEngine};
pub use error::FleetError;
pub use gateway::{
    FleetGateway, GatewayConn, GatewayListener, GatewayPoll, GatewayRound, NoListener,
    MAX_ROUTED_PER_CONN,
};
pub use lifecycle::{
    ChurnEvent, DeviceState, EpochPlan, FleetDirectory, LifecycleCensus, LifecycleConfig,
};
pub use reactor::{MultiGateway, ReactorStats};
pub use registry::{FleetVerifier, Verdict, SHARD_COUNT};
pub use round::{RoundOutcome, RoundReport};
pub use runtime::FleetRuntime;
pub use stream::{
    announce_devices, drive_round, pump_read, serve_frames, ReadPump, StreamTransport, WritePump,
    WriteQueue,
};
pub use transport::{Loopback, Transport};

use std::fmt;

/// A fleet-wide prover identity.
///
/// Purely administrative: the id routes frames and keys the registry,
/// while all authentication comes from the per-device key inside the
/// MAC. Ids are carried on the wire by [`apex_pox::wire::Envelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap::{programs, AsapError, Device, PoxMode, VerifierSpec};

    fn key_for(id: DeviceId) -> Vec<u8> {
        format!("key-{id}").into_bytes()
    }

    /// A fleet of `n` ASAP devices, enrolled and run to completion.
    fn fleet_of(n: u64) -> (FleetVerifier, Loopback) {
        let image = programs::fig4_authorized().unwrap();
        let fleet = FleetVerifier::new();
        let mut fabric = Loopback::new();
        for raw in 1..=n {
            let id = DeviceId(raw);
            let mut device = Device::builder(&image).key(&key_for(id)).build().unwrap();
            assert!(device.run_until_pc(programs::done_pc(), 10_000));
            fabric.attach(id, device);
            fleet
                .register(
                    id,
                    &key_for(id),
                    VerifierSpec::from_image(&image)
                        .unwrap()
                        .mode(PoxMode::Asap),
                )
                .unwrap();
        }
        (fleet, fabric)
    }

    #[test]
    fn honest_round_verifies_every_device() {
        let (fleet, mut fabric) = fleet_of(5);
        let ids: Vec<DeviceId> = (1..=5).map(DeviceId).collect();
        let report = fleet.run_round(&ids, &mut fabric).unwrap();
        assert_eq!(report.verified(), 5);
        assert_eq!(report.rejected(), 0);
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn duplicate_and_unknown_devices_are_typed_errors() {
        let (fleet, _) = fleet_of(1);
        let image = programs::fig4_authorized().unwrap();
        assert_eq!(
            fleet.register(DeviceId(1), b"k", VerifierSpec::from_image(&image).unwrap()),
            Err(FleetError::DuplicateDevice(DeviceId(1)))
        );
        assert_eq!(
            fleet.begin(DeviceId(99)),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
        assert_eq!(
            fleet.begin_round(&[DeviceId(1), DeviceId(99)]),
            Err(FleetError::UnknownDevice(DeviceId(99)))
        );
        assert_eq!(fleet.in_flight(), 0, "failed round issues no challenges");
    }

    #[test]
    fn evidence_without_a_challenge_is_no_session() {
        let (fleet, mut fabric) = fleet_of(1);
        let id = DeviceId(1);
        // Obtain a valid response frame, conclude it…
        let req = fleet.begin(id).unwrap();
        let resp = fabric.exchange(id, &req).unwrap();
        let (device, result) = fleet.conclude(&resp);
        assert_eq!(device, Some(id));
        assert!(result.is_ok());
        // …then feed the same frame again: fleet-level replay.
        let (device, result) = fleet.conclude(&resp);
        assert_eq!(device, Some(id));
        assert_eq!(result, Err(FleetError::NoSession(id)));
    }

    #[test]
    fn rechallenge_makes_prior_evidence_stale() {
        let (fleet, mut fabric) = fleet_of(1);
        let id = DeviceId(1);
        let stale_req = fleet.begin(id).unwrap();
        let stale_resp = fabric.exchange(id, &stale_req).unwrap();
        // Re-challenge before concluding: the old challenge is dead.
        let _fresh_req = fleet.begin(id).unwrap();
        assert_eq!(fleet.in_flight(), 1, "re-begin replaces, never stacks");
        let (_, result) = fleet.conclude(&stale_resp);
        assert_eq!(result, Err(FleetError::Rejected(AsapError::BadMac)));
    }

    #[test]
    fn duplicated_ids_are_challenged_once() {
        let (fleet, mut fabric) = fleet_of(2);
        let (a, b) = (DeviceId(1), DeviceId(2));
        // Listing a device twice must not stale its own challenge.
        let report = fleet.run_round(&[a, a, b], &mut fabric).unwrap();
        assert_eq!(report.verified(), 2);
        assert_eq!(report.outcomes.len(), 2, "one verdict per device");
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn one_bad_frame_never_poisons_the_round() {
        let (fleet, mut fabric) = fleet_of(3);
        let ids: Vec<DeviceId> = (1..=3).map(DeviceId).collect();
        let requests = fleet.begin_round(&ids).unwrap();
        let mut frames: Vec<Vec<u8>> = requests
            .iter()
            .map(|(id, req)| fabric.exchange(*id, req).unwrap())
            .collect();
        frames[1][0] ^= 0xFF; // destroy device 2's envelope magic
        let report = fleet.conclude_round(&ids, &frames);
        assert_eq!(report.verified(), 2, "devices 1 and 3 still verify");
        // The broken frame is unattributable; device 2's dangling
        // session is charged as NoResponse.
        assert_eq!(report.no_response(), 1);
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn misrouted_envelope_is_rejected_not_cross_verified() {
        let (fleet, mut fabric) = fleet_of(2);
        let (a, b) = (DeviceId(1), DeviceId(2));
        let requests = fleet.begin_round(&[a, b]).unwrap();
        let resp_a = fabric.exchange(a, &requests[0].1).unwrap();
        let payload_a = apex_pox::wire::Envelope::from_bytes(&resp_a)
            .unwrap()
            .payload;
        // Device 1's honest evidence, re-addressed as device 2's.
        let forged = apex_pox::wire::Envelope::wrap(b.0, payload_a).to_bytes();
        let (device, result) = fleet.conclude(&forged);
        assert_eq!(device, Some(b));
        assert_eq!(result, Err(FleetError::Rejected(AsapError::BadMac)));
    }

    #[test]
    fn loopback_pumps_responses_in_send_order() {
        let (fleet, mut fabric) = fleet_of(3);
        let ids: Vec<DeviceId> = (1..=3).map(DeviceId).collect();
        let requests = fleet.begin_round(&ids).unwrap();
        for (id, frame) in &requests {
            fabric.send(*id, frame);
        }
        let order: Vec<u64> = std::iter::from_fn(|| fabric.try_recv())
            .map(|f| apex_pox::wire::Envelope::from_bytes(&f).unwrap().device_id)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        // Drain the sessions cleanly.
        fleet.conclude_round(&ids, &[]);
    }

    #[test]
    fn engine_late_frame_within_deadline_verifies() {
        let (fleet, mut fabric) = fleet_of(1);
        let ids = [DeviceId(1)];
        let mut engine =
            RoundEngine::begin(&fleet, &ids, RoundConfig::new(LogicalTime(0), 5)).unwrap();
        let (id, request) = engine.poll_transmit().unwrap();
        let response = fabric.exchange(id, &request).unwrap();

        engine.tick(LogicalTime(4));
        assert_eq!(engine.awaiting(), 1, "deadline not reached yet");
        engine.frame_received(&response);
        assert!(engine.is_settled());
        assert_eq!(engine.next_deadline(), None);
        let outcome = engine.poll_outcome().unwrap();
        assert_eq!(outcome.device, Some(id));
        assert!(outcome.result.is_ok(), "late but in time still verifies");
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn engine_frame_after_deadline_does_not_reopen_the_verdict() {
        let (fleet, mut fabric) = fleet_of(1);
        let id = DeviceId(1);
        let mut engine =
            RoundEngine::begin(&fleet, &[id], RoundConfig::new(LogicalTime(0), 3)).unwrap();
        let (_, request) = engine.poll_transmit().unwrap();
        let response = fabric.exchange(id, &request).unwrap();

        engine.tick(LogicalTime(3)); // deadline crossed: NoResponse
        engine.frame_received(&response); // the response limps in
        let report = engine.into_report();
        // The round's verdict is NoResponse; the late frame settles as
        // a separate NoSession entry and is never cross-verified.
        assert_eq!(
            report.outcome_for(id).unwrap().result,
            Err(FleetError::NoResponse(id))
        );
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(
            report.outcomes[1].result,
            Err(FleetError::NoSession(id)),
            "late evidence answers an aborted session"
        );
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn engine_deadlines_are_per_device() {
        let (fleet, _fabric) = fleet_of(2);
        let ids = [DeviceId(1), DeviceId(2)];
        let mut engine =
            RoundEngine::begin(&fleet, &ids, RoundConfig::new(LogicalTime(0), 4)).unwrap();
        while engine.poll_transmit().is_some() {} // requests "on the wire"
        engine.set_deadline(DeviceId(2), LogicalTime(9));
        assert_eq!(engine.next_deadline(), Some(LogicalTime(4)));

        engine.tick(LogicalTime(4)); // only device 1 expires
        assert_eq!(engine.awaiting(), 1);
        assert_eq!(engine.next_deadline(), Some(LogicalTime(9)));
        assert_eq!(
            engine.poll_outcome().unwrap().result,
            Err(FleetError::NoResponse(DeviceId(1)))
        );

        engine.tick(LogicalTime(9));
        assert!(engine.is_settled());
        assert_eq!(fleet.in_flight(), 0, "expiry aborts both sessions");
    }

    #[test]
    fn engine_time_never_runs_backwards() {
        let (fleet, _fabric) = fleet_of(1);
        let mut engine =
            RoundEngine::begin(&fleet, &[DeviceId(1)], RoundConfig::new(LogicalTime(0), 5))
                .unwrap();
        while engine.poll_transmit().is_some() {}
        engine.tick(LogicalTime(4));
        engine.tick(LogicalTime(1)); // a confused driver rewinds
        assert_eq!(engine.now(), LogicalTime(4));
        assert_eq!(engine.awaiting(), 1, "rewind must not expire anyone");
        engine.tick(LogicalTime(5));
        assert!(engine.is_settled());
    }

    #[test]
    fn shards_serve_concurrent_threads() {
        use std::sync::Arc;

        // The simulated Device is deliberately not Send (it models one
        // physical MCU), so exchanges happen here; issuance and
        // conclusion hit the shared registry from four threads.
        let (fleet, mut fabric) = fleet_of(32);
        let fleet = Arc::new(fleet);

        let issue: Vec<_> = (0..4u64)
            .map(|t| {
                let fleet = Arc::clone(&fleet);
                std::thread::spawn(move || {
                    (1 + t..=32)
                        .step_by(4)
                        .map(|raw| (DeviceId(raw), fleet.begin(DeviceId(raw)).unwrap()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let requests: Vec<(DeviceId, Vec<u8>)> =
            issue.into_iter().flat_map(|h| h.join().unwrap()).collect();
        assert_eq!(fleet.in_flight(), 32);

        let responses: Vec<Vec<u8>> = requests
            .iter()
            .map(|(id, req)| fabric.exchange(*id, req).unwrap())
            .collect();

        let conclude: Vec<_> = responses
            .chunks(8)
            .map(|chunk| {
                let fleet = Arc::clone(&fleet);
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for frame in &chunk {
                        let (device, result) = fleet.conclude(frame);
                        assert!(device.is_some());
                        result.unwrap();
                    }
                })
            })
            .collect();
        for h in conclude {
            h.join().unwrap();
        }
        assert_eq!(fleet.in_flight(), 0);
    }

    /// Regression: a sub-millisecond budget used to truncate to a
    /// *zero-tick* deadline, so the driver's very first tick charged
    /// every device `NoResponse` before a single frame was read.
    /// Budgets now round up and never below one tick.
    #[test]
    fn submillisecond_budget_rounds_up_to_one_tick() {
        use std::time::Duration;

        assert_eq!(
            RoundConfig::realtime(Duration::from_micros(500)).deadline_after,
            1
        );
        assert_eq!(RoundConfig::realtime(Duration::ZERO).deadline_after, 1);
        assert_eq!(
            RoundConfig::realtime(Duration::from_millis(3)).deadline_after,
            3
        );
        assert_eq!(
            RoundConfig::realtime(Duration::from_micros(3_001)).deadline_after,
            4,
            "partial milliseconds round up, not down"
        );

        let (fleet, mut fabric) = fleet_of(1);
        let mut engine = RoundEngine::begin(
            &fleet,
            &[DeviceId(1)],
            RoundConfig::realtime(Duration::from_micros(500)),
        )
        .unwrap();
        let (id, request) = engine.poll_transmit().unwrap();
        // The driver's first sweep happens at elapsed = 0 ms.
        engine.tick(LogicalTime(0));
        assert_eq!(engine.awaiting(), 1, "time zero must not expire anyone");
        let response = fabric.exchange(id, &request).unwrap();
        engine.frame_received(&response);
        assert!(engine.poll_outcome().unwrap().result.is_ok());
        assert!(engine.is_settled());
    }

    /// Regression: when one batch carries several frames for the same
    /// device, the worker pool used to let thread scheduling pick
    /// which frame claimed the session. The *first frame in input
    /// order* must win, with repeats settling as `NoSession`.
    #[test]
    fn batch_duplicates_resolve_in_input_order() {
        const DEVICES: u64 = 40; // comfortably past the pool threshold
        let (fleet, mut fabric) = fleet_of(DEVICES);
        fleet.set_parallelism(4); // force the pooled path even on 1 cpu
        let ids: Vec<DeviceId> = (1..=DEVICES).map(DeviceId).collect();

        for _ in 0..3 {
            let requests = fleet.begin_round(&ids).unwrap();
            let answers: Vec<Vec<u8>> = requests
                .iter()
                .map(|(id, req)| fabric.exchange(*id, req).unwrap())
                .collect();

            // Device 1 appears three times: a corrupted copy FIRST,
            // then its honest answer, then the honest bytes again.
            let honest = answers[0].clone();
            let mut corrupt = honest.clone();
            corrupt[apex_pox::wire::ENVELOPE_OVERHEAD as usize] ^= 0x01;
            let mut frames = vec![corrupt];
            frames.extend(answers[1..].iter().cloned());
            frames.push(honest.clone());
            frames.push(honest);

            let verdicts = fleet.conclude_batch(&frames);
            assert_eq!(verdicts.len(), frames.len());
            // The corrupted first frame claimed device 1's session…
            assert_eq!(verdicts[0].0, Some(DeviceId(1)));
            assert!(
                matches!(verdicts[0].1, Err(FleetError::Rejected(_))),
                "first frame in input order owns the session: {:?}",
                verdicts[0].1
            );
            // …so the honest repeats settle as NoSession, every time.
            for v in &verdicts[frames.len() - 2..] {
                assert_eq!(
                    v,
                    &(Some(DeviceId(1)), Err(FleetError::NoSession(DeviceId(1))))
                );
            }
            for (i, v) in verdicts[1..frames.len() - 2].iter().enumerate() {
                let id = DeviceId(2 + i as u64);
                assert_eq!(v.0, Some(id), "output order mirrors input order");
                assert!(v.1.is_ok(), "honest device {id} verifies: {:?}", v.1);
            }
        }
    }
}
