//! How request frames reach provers and response frames come back.
//!
//! A transport is a **non-blocking byte pump**: [`send`] puts one
//! enveloped frame on the wire, [`try_recv`] returns a received frame
//! if one is available *right now*. Nothing here blocks on a device —
//! waiting, deadlines and verdicts all live in the sans-IO
//! [`RoundEngine`](crate::RoundEngine), which any transport drives by
//! pumping frames in and ticking logical time.
//!
//! Two implementations ship: the in-process [`Loopback`] wiring frames
//! straight into simulated [`Device`]s (the reference vehicle for
//! tests, scenarios and benchmarks), and the socket-backed
//! [`StreamTransport`](crate::StreamTransport) for provers living in
//! other processes or hosts.
//!
//! [`send`]: Transport::send
//! [`try_recv`]: Transport::try_recv

use crate::DeviceId;
use apex_pox::wire::Envelope;
use asap::Device;
use std::collections::{HashMap, VecDeque};

/// A non-blocking frame pump between the verifier and its provers.
pub trait Transport {
    /// Puts one enveloped request frame on the wire towards `device`.
    /// Delivery is best-effort: a transport reports loss by the
    /// response simply never appearing in [`try_recv`], never by
    /// forging frames — the engine's deadline then charges the device
    /// [`NoResponse`](crate::FleetError::NoResponse).
    ///
    /// [`try_recv`]: Transport::try_recv
    fn send(&mut self, device: DeviceId, frame: &[u8]);

    /// The next received enveloped response frame, if one is available
    /// without blocking indefinitely. Implementations may wait a
    /// bounded interval (a socket read timeout); `None` means "nothing
    /// yet", and the driver should `tick` the engine.
    fn try_recv(&mut self) -> Option<Vec<u8>>;

    /// How long one empty [`try_recv`](Transport::try_recv) may already
    /// have waited — the transport's configured read timeout, if it has
    /// one. Drivers use this to pace their idle loop: a paced transport
    /// is retried immediately, an unpaced (or instantly-returning) one
    /// gets the driver's own yield. `None`, the default, means "I
    /// return immediately; pace me yourself".
    fn recv_pacing(&self) -> Option<std::time::Duration> {
        None
    }
}

/// An in-memory transport backed by real simulated devices.
///
/// [`send`](Transport::send) unwraps the frame, dispatches it to the
/// owned [`Device`]'s [`attest_bytes`](Device::attest_bytes), and
/// queues the re-enveloped response for [`try_recv`](Transport::try_recv)
/// — exactly the work a network stack plus the prover's UART shim
/// would do, minus the latency.
#[derive(Default)]
pub struct Loopback {
    devices: HashMap<DeviceId, Device>,
    inbox: VecDeque<Vec<u8>>,
}

impl Loopback {
    /// An empty loopback fabric.
    pub fn new() -> Loopback {
        Loopback::default()
    }

    /// Attaches a device under `id`, replacing any previous occupant.
    pub fn attach(&mut self, id: DeviceId, device: Device) {
        self.devices.insert(id, device);
    }

    /// The attached device, for scenario setup (running it to its done
    /// loop, pressing buttons, tampering with memory).
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(&id)
    }

    /// Number of attached devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are attached.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// One synchronous exchange, bypassing the receive queue: the
    /// device's response to `frame`, if it answers. A convenience for
    /// tests and scenario priming that need a specific device's frame
    /// in hand; round driving goes through [`Transport`].
    pub fn exchange(&mut self, device: DeviceId, frame: &[u8]) -> Option<Vec<u8>> {
        let envelope = Envelope::from_bytes(frame).ok()?;
        // A prover ignores frames addressed to somebody else.
        if envelope.device_id != device.0 {
            return None;
        }
        let prover = self.devices.get_mut(&device)?;
        let response = prover.attest_bytes(&envelope.payload).ok()?;
        Some(Envelope::wrap(device.0, response).to_bytes())
    }
}

impl Transport for Loopback {
    fn send(&mut self, device: DeviceId, frame: &[u8]) {
        if let Some(response) = self.exchange(device, frame) {
            self.inbox.push_back(response);
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        self.inbox.pop_front()
    }
}
