//! How request frames reach provers and response frames come back.
//!
//! The fleet verifier is transport-agnostic: anything that can carry an
//! enveloped request to a device and bring an enveloped response back
//! implements [`Transport`]. The in-process [`Loopback`] implementation
//! wires frames straight into simulated [`Device`]s — the reference
//! vehicle for tests, scenarios and benchmarks. A real deployment would
//! implement the same trait over sockets (see `ROADMAP.md`).

use crate::DeviceId;
use apex_pox::wire::Envelope;
use asap::Device;
use std::collections::HashMap;

/// One challenge/response exchange with a remote prover.
pub trait Transport {
    /// Delivers an enveloped request frame to `device` and returns its
    /// enveloped response frame, or `None` when the device is
    /// unreachable or the response was lost — transports report loss by
    /// omission, never by forging frames.
    fn exchange(&mut self, device: DeviceId, frame: &[u8]) -> Option<Vec<u8>>;
}

/// An in-memory transport backed by real simulated devices.
///
/// Each frame is unwrapped, dispatched to the owned [`Device`]'s
/// [`attest_bytes`](Device::attest_bytes), and the response re-enveloped
/// under the device's id — exactly the work a network stack plus the
/// prover's UART shim would do.
#[derive(Default)]
pub struct Loopback {
    devices: HashMap<DeviceId, Device>,
}

impl Loopback {
    /// An empty loopback fabric.
    pub fn new() -> Loopback {
        Loopback::default()
    }

    /// Attaches a device under `id`, replacing any previous occupant.
    pub fn attach(&mut self, id: DeviceId, device: Device) {
        self.devices.insert(id, device);
    }

    /// The attached device, for scenario setup (running it to its done
    /// loop, pressing buttons, tampering with memory).
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(&id)
    }

    /// Number of attached devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are attached.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

impl Transport for Loopback {
    fn exchange(&mut self, device: DeviceId, frame: &[u8]) -> Option<Vec<u8>> {
        let envelope = Envelope::from_bytes(frame).ok()?;
        // A prover ignores frames addressed to somebody else.
        if envelope.device_id != device.0 {
            return None;
        }
        let prover = self.devices.get_mut(&device)?;
        let response = prover.attest_bytes(&envelope.payload).ok()?;
        Some(Envelope::wrap(device.0, response).to_bytes())
    }
}
