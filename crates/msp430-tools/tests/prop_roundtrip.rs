//! Property test: assembling rendered instructions and disassembling the
//! linked image reproduces the original instruction stream.

use msp430_tools::disasm::disassemble;
use msp430_tools::link::{link, LinkConfig};
use openmsp430::isa::{Instr, Operand, TwoOp};
use openmsp430::mem::Memory;
use openmsp430::regs::Reg;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (4u8..16).prop_map(Reg::r)
}

/// Operands that render to parseable assembly text.
fn arb_operand_text() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_reg().prop_map(|r| r.to_string()),
        (0u16..0xFFFF).prop_map(|v| format!("#{v}")),
        (0x0200u16..0x0A00).prop_map(|a| format!("&{a:#06x}")),
        (arb_reg(), -64i16..64).prop_map(|(r, o)| format!("{o}({r})")),
        arb_reg().prop_map(|r| format!("@{r}")),
        arb_reg().prop_map(|r| format!("@{r}+")),
    ]
}

fn arb_two_mnemonic() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("mov"),
        Just("add"),
        Just("addc"),
        Just("sub"),
        Just("subc"),
        Just("cmp"),
        Just("dadd"),
        Just("bit"),
        Just("bic"),
        Just("bis"),
        Just("xor"),
        Just("and"),
    ]
}

fn arb_dst_text() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_reg().prop_map(|r| r.to_string()),
        (0x0200u16..0x0A00).prop_map(|a| format!("&{a:#06x}")),
        (arb_reg(), -64i16..64).prop_map(|(r, o)| format!("{o}({r})")),
    ]
}

proptest! {
    /// Random instruction streams survive asm → link → disasm.
    #[test]
    fn assemble_disassemble_roundtrip(
        instrs in proptest::collection::vec(
            (arb_two_mnemonic(), any::<bool>(), arb_operand_text(), arb_dst_text()),
            1..20,
        )
    ) {
        let mut src = String::from("    .section text\nmain:\n");
        for (m, byte, s, d) in &instrs {
            let suffix = if *byte { ".b" } else { "" };
            src.push_str(&format!("    {m}{suffix} {s}, {d}\n"));
        }
        let img = link(&src, &LinkConfig::new(0xC000, 0xE000)).expect("links");
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        let total: u16 = img.chunks.iter().map(|(_, b)| b.len() as u16).sum();
        let lines = disassemble(&mem, 0xE000, 0xE000 + total, &BTreeMap::new());
        prop_assert_eq!(lines.len(), instrs.len());
        for (line, (m, byte, _, _)) in lines.iter().zip(&instrs) {
            match line.instr {
                Instr::Two { op, byte: b, .. } => {
                    prop_assert_eq!(op.mnemonic(), *m);
                    prop_assert_eq!(b, *byte);
                }
                other => prop_assert!(false, "unexpected decode {:?}", other),
            }
        }
    }

    /// Immediates that hit the constant generator still decode to the
    /// same value.
    #[test]
    fn constant_generator_values_roundtrip(v in prop_oneof![
        Just(0u16), Just(1), Just(2), Just(4), Just(8), Just(0xFFFF)
    ]) {
        let signed = v as i16;
        let src = format!("    .section text\nmain:\n    mov #{signed}, r5\n");
        let img = link(&src, &LinkConfig::new(0xC000, 0xE000)).unwrap();
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        let lines = disassemble(&mem, 0xE000, 0xE002, &BTreeMap::new());
        match lines[0].instr {
            Instr::Two { op: TwoOp::Mov, src: Operand::Const(c), .. } => {
                prop_assert_eq!(c, v)
            }
            other => prop_assert!(false, "expected const-generator mov, got {:?}", other),
        }
    }
}
