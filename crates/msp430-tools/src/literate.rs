//! Literate MSP430 programs: `.s.md` files where markdown prose
//! documents a workload and fenced ` ```asm ` blocks hold the code.
//!
//! A literate source has three layers:
//!
//! 1. **Front matter** — an optional `---`-delimited header of
//!    `key: value` lines at the top of the file. The toolchain itself
//!    consumes only the link-level keys (`exec-base`, `text-base`,
//!    `data-base`, `reset`, `isr`, `param`); every other key is
//!    preserved verbatim for higher layers (the corpus runner reads its
//!    mode/verdict annotations from here).
//! 2. **Prose** — ordinary markdown. The first `# heading` is kept as
//!    the program's title; everything else is documentation only.
//! 3. **Code** — fenced ` ```asm ` blocks, concatenated in file order
//!    into one assembly source. Section state (`.section`) carries
//!    across blocks, so prose can interleave with the program at any
//!    granularity.
//!
//! Diagnostics survive the extraction: assembler/linker errors inside a
//! block are remapped to the *file* line of the `.s.md`, and name the
//! offending block.
//!
//! ```
//! use msp430_tools::literate::LiterateSource;
//! use msp430_tools::link::LinkConfig;
//!
//! // (the fence is spelled out so this doc example's own fence survives)
//! let f = "`".repeat(3);
//! let text = format!(
//!     "---\nname: demo\nreset: main\n---\n\n\x23 A tiny demo\n\n\
//!      The provable part just returns:\n\n\
//!      {f}asm\n    .section exec.start\nstartER:\n    ret\n{f}\n\n\
//!      and the untrusted caller invokes it once:\n\n\
//!      {f}asm\n    .section text\nmain:\n    call #startER\ndone:\n    jmp done\n{f}\n"
//! );
//! let lit = LiterateSource::parse(&text)?;
//! assert_eq!(lit.front.get("name"), Some("demo"));
//! assert_eq!(lit.title.as_deref(), Some("A tiny demo"));
//! let image = lit.link(LinkConfig::new(0xE000, 0xF000), &|_| None, &[])?;
//! assert_eq!(image.symbol("main"), Some(0xF000));
//! # Ok::<(), msp430_tools::literate::LiterateError>(())
//! ```

use crate::asm::Span;
use crate::link::{link_sections, Image, LinkConfig, LinkError};
use std::error::Error;
use std::fmt;

/// An error in a literate source, located in `.s.md` coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiterateError {
    msg: String,
    /// Position in the `.s.md` file (not the concatenated assembly).
    span: Option<Span>,
    /// 0-based index of the offending ` ```asm ` block, when the error
    /// came from inside one.
    block: Option<usize>,
}

impl LiterateError {
    fn new(msg: impl Into<String>) -> LiterateError {
        LiterateError {
            msg: msg.into(),
            span: None,
            block: None,
        }
    }

    fn at_line(mut self, line: usize) -> LiterateError {
        self.span = Some(Span { line, col: 0 });
        self
    }

    /// The bare description.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Position in the `.s.md` file, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// 0-based index of the asm block the error came from, when known.
    pub fn block(&self) -> Option<usize> {
        self.block
    }
}

impl fmt::Display for LiterateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.span, self.block) {
            (Some(span), Some(b)) => {
                write!(f, "asm block {} ({span}): {}", b + 1, self.msg)
            }
            (Some(span), None) => write!(f, "{span}: {}", self.msg),
            _ => write!(f, "{}", self.msg),
        }
    }
}

impl Error for LiterateError {}

impl From<LiterateError> for LinkError {
    fn from(e: LiterateError) -> LinkError {
        let mut out = LinkError::new(e.to_string());
        if let Some(s) = e.span {
            out = out.at(s.line, s.col);
        }
        out
    }
}

/// One `key: value` front-matter entry, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontEntry {
    /// The key (left of the first `:`), trimmed.
    pub key: String,
    /// The value (right of the first `:`), trimmed.
    pub value: String,
    /// 1-based file line the entry sits on.
    pub line: usize,
}

/// The parsed front matter: ordered `key: value` pairs. Keys may
/// repeat (`isr:` and `param:` routinely do); order is preserved
/// because IVT entry order is part of a linked image's identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontMatter {
    entries: Vec<FrontEntry>,
}

impl FrontMatter {
    /// The first value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.value.as_str())
    }

    /// All values for `key`, in file order.
    pub fn values<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.entries
            .iter()
            .filter(move |e| e.key == key)
            .map(|e| e.value.as_str())
    }

    /// All entries, in file order.
    pub fn entries(&self) -> impl Iterator<Item = &FrontEntry> {
        self.entries.iter()
    }
}

/// One fenced ` ```asm ` block, verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmBlock {
    /// 1-based file line of the opening fence.
    pub fence_line: usize,
    /// The lines between the fences, exactly as written.
    pub lines: Vec<String>,
}

/// A parsed `.s.md` file: front matter, title, and asm blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiterateSource {
    /// The `---`-delimited header (empty when absent).
    pub front: FrontMatter,
    /// The first `# heading` outside any fence, without the `#`.
    pub title: Option<String>,
    /// The ` ```asm ` blocks, in file order.
    pub blocks: Vec<AsmBlock>,
}

/// The concatenated assembly of a literate source, with the map back
/// to `.s.md` coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatAsm {
    /// The assembly source, ready for [`crate::asm::assemble`].
    pub source: String,
    /// Per concatenated line: `(file_line, block_index)`.
    map: Vec<(usize, usize)>,
}

impl FlatAsm {
    /// Maps a 1-based line of the concatenated assembly back to
    /// `(file_line, block_index)` in the `.s.md`.
    pub fn locate(&self, asm_line: usize) -> Option<(usize, usize)> {
        self.map.get(asm_line.checked_sub(1)?).copied()
    }

    fn rebase(&self, msg: String, span: Option<Span>) -> LiterateError {
        let mut out = LiterateError::new(msg);
        if let Some(s) = span {
            if let Some((file_line, block)) = self.locate(s.line) {
                out.span = Some(Span {
                    line: file_line,
                    col: s.col,
                });
                out.block = Some(block);
            }
        }
        out
    }
}

/// True for a fence opener whose info string marks MSP430 assembly.
fn is_asm_fence(info: &str) -> bool {
    matches!(info.trim(), "asm" | "s" | "msp430" | "msp430-asm")
}

/// Parses a numeric front-matter value (decimal or `0x…`).
fn parse_value_num(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl LiterateSource {
    /// Parses a `.s.md` text.
    ///
    /// # Errors
    ///
    /// Unterminated front matter or fence, and malformed front-matter
    /// lines (no `:`).
    pub fn parse(text: &str) -> Result<LiterateSource, LiterateError> {
        let mut lines = text.lines().enumerate().peekable();

        // Front matter: a `---` line first (blank lines may precede).
        let mut front = FrontMatter::default();
        while let Some((_, l)) = lines.peek() {
            if l.trim().is_empty() {
                lines.next();
            } else {
                break;
            }
        }
        if lines.peek().is_some_and(|(_, l)| l.trim() == "---") {
            let (open_idx, _) = lines.next().unwrap();
            let mut closed = false;
            for (idx, l) in lines.by_ref() {
                let line = idx + 1;
                let t = l.trim();
                if t == "---" {
                    closed = true;
                    break;
                }
                if t.is_empty() || t.starts_with('#') {
                    continue; // blank or comment
                }
                let Some((key, value)) = t.split_once(':') else {
                    return Err(LiterateError::new(format!(
                        "front-matter line is not `key: value`: `{t}`"
                    ))
                    .at_line(line));
                };
                front.entries.push(FrontEntry {
                    key: key.trim().to_string(),
                    value: value.trim().to_string(),
                    line,
                });
            }
            if !closed {
                return Err(LiterateError::new("front matter is never closed by `---`")
                    .at_line(open_idx + 1));
            }
        }

        // Body: prose, headings, and fenced blocks.
        let mut title = None;
        let mut blocks = Vec::new();
        while let Some((idx, l)) = lines.next() {
            let t = l.trim_end();
            if let Some(info) = t.strip_prefix("```") {
                let fence_line = idx + 1;
                let collect = is_asm_fence(info);
                let mut body = Vec::new();
                let mut closed = false;
                for (_, inner) in lines.by_ref() {
                    if inner.trim_end() == "```" {
                        closed = true;
                        break;
                    }
                    body.push(inner.to_string());
                }
                if !closed {
                    return Err(
                        LiterateError::new("code fence is never closed by ```").at_line(fence_line)
                    );
                }
                if collect {
                    blocks.push(AsmBlock {
                        fence_line,
                        lines: body,
                    });
                }
            } else if title.is_none() {
                if let Some(h) = t.strip_prefix('#') {
                    title = Some(h.trim_start_matches('#').trim().to_string());
                }
            }
        }

        Ok(LiterateSource {
            front,
            title,
            blocks,
        })
    }

    /// The `param: <name> <default>` declarations, in file order.
    pub fn params(&self) -> Vec<(String, String)> {
        self.front
            .values("param")
            .filter_map(|v| {
                let (name, default) = v.split_once(char::is_whitespace)?;
                Some((name.trim().to_string(), default.trim().to_string()))
            })
            .collect()
    }

    /// Concatenates the asm blocks into one assembly source, applying
    /// `{name}` parameter substitution (declared defaults, overridden
    /// by `overrides`).
    ///
    /// # Errors
    ///
    /// A `{name}` reference with no declared parameter of that name, or
    /// an unmatched `{`.
    pub fn flatten(&self, overrides: &[(&str, &str)]) -> Result<FlatAsm, LiterateError> {
        let mut params = self.params();
        for (name, value) in overrides {
            match params.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = value.to_string(),
                None => params.push((name.to_string(), value.to_string())),
            }
        }

        let mut source = String::new();
        let mut map = Vec::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            for (li, raw) in block.lines.iter().enumerate() {
                let file_line = block.fence_line + 1 + li;
                let line = if raw.contains('{') {
                    substitute(raw, &params).map_err(|msg| {
                        let mut e = LiterateError::new(msg).at_line(file_line);
                        e.block = Some(bi);
                        e
                    })?
                } else {
                    raw.clone()
                };
                source.push_str(&line);
                source.push('\n');
                map.push((file_line, bi));
            }
        }
        Ok(FlatAsm { source, map })
    }

    /// Builds the [`LinkConfig`] for this source: `defaults` overlaid
    /// with the front-matter link keys. `resolve_vector` maps symbolic
    /// ISR vector names (`isr: timer timer_isr`) to vector numbers;
    /// numeric vectors (`isr: 9 timer_isr`) need no resolver.
    ///
    /// # Errors
    ///
    /// Malformed numeric values, malformed `isr:` entries, or vector
    /// names the resolver does not know.
    pub fn link_config(
        &self,
        defaults: LinkConfig,
        resolve_vector: &dyn Fn(&str) -> Option<u8>,
    ) -> Result<LinkConfig, LiterateError> {
        let mut config = defaults;
        for entry in self.front.entries() {
            let bad = |what: &str| {
                Err(LiterateError::new(format!(
                    "bad `{}:` value `{}`: {what}",
                    entry.key, entry.value
                ))
                .at_line(entry.line))
            };
            match entry.key.as_str() {
                "exec-base" => match parse_value_num(&entry.value) {
                    Some(v) if v <= 0xFFFF => config.exec_base = v as u16,
                    _ => return bad("expected a 16-bit address"),
                },
                "text-base" => match parse_value_num(&entry.value) {
                    Some(v) if v <= 0xFFFF => config.text_base = v as u16,
                    _ => return bad("expected a 16-bit address"),
                },
                "data-base" => match parse_value_num(&entry.value) {
                    Some(v) if v <= 0xFFFF => config.data_base = Some(v as u16),
                    _ => return bad("expected a 16-bit address"),
                },
                "reset" => config.reset = Some(entry.value.clone()),
                "isr" => {
                    let Some((vec_name, symbol)) = entry.value.split_once(char::is_whitespace)
                    else {
                        return bad("expected `<vector> <symbol>`");
                    };
                    let vec_name = vec_name.trim();
                    let symbol = symbol.trim();
                    let vector = match parse_value_num(vec_name) {
                        Some(v) if v <= 0xFF => v as u8,
                        Some(_) => return bad("vector out of range"),
                        None => match resolve_vector(vec_name) {
                            Some(v) => v,
                            None => return bad("unknown vector name"),
                        },
                    };
                    config.ivt.push((vector, symbol.to_string()));
                }
                _ => {} // higher layers own the rest
            }
        }
        Ok(config)
    }

    /// Flattens, assembles and links in one step, remapping any
    /// assembler/linker error back to `.s.md` coordinates.
    ///
    /// # Errors
    ///
    /// Everything [`LiterateSource::flatten`],
    /// [`LiterateSource::link_config`], the assembler and the linker
    /// can reject — always located in file coordinates when possible.
    pub fn link(
        &self,
        defaults: LinkConfig,
        resolve_vector: &dyn Fn(&str) -> Option<u8>,
        overrides: &[(&str, &str)],
    ) -> Result<Image, LiterateError> {
        let config = self.link_config(defaults, resolve_vector)?;
        let flat = self.flatten(overrides)?;
        let sections = crate::asm::assemble(&flat.source)
            .map_err(|e| flat.rebase(e.msg.clone(), Some(e.span())))?;
        link_sections(&sections, &config)
            .map_err(|e| flat.rebase(e.message().to_string(), e.span()))
    }
}

/// Replaces `{name}` references in one line. Returns an error message
/// on unknown names or unmatched braces.
fn substitute(line: &str, params: &[(String, String)]) -> Result<String, String> {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        let Some(close) = after.find('}') else {
            return Err("unmatched `{` (parameter references are `{name}`)".into());
        };
        let name = &after[..close];
        match params.iter().find(|(n, _)| n == name) {
            Some((_, value)) => out.push_str(value),
            None => return Err(format!("unknown parameter `{{{name}}}`")),
        }
        rest = &after[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "---\nname: t\nparam: count 5\nisr: 9 isr\nreset: main\n---\n\n# Title here\n\nprose\n\n```asm\n    .section exec.start\nstartER:\n    call #task\n    br #exitER\n    .section exec.leave\nexitER:\n    ret\n```\n\nmore prose, and a non-asm fence that must be skipped:\n\n```sh\ncargo test\n```\n\n```asm\n    .section exec.body\ntask:\n    mov #{count}, r4\nisr:\n    reti\n    .section text\nmain:\n    call #startER\ndone:\n    jmp done\n```\n";

    #[test]
    fn parses_front_matter_title_and_blocks() {
        let lit = LiterateSource::parse(DEMO).unwrap();
        assert_eq!(lit.front.get("name"), Some("t"));
        assert_eq!(lit.title.as_deref(), Some("Title here"));
        assert_eq!(lit.blocks.len(), 2, "the sh fence is prose");
        assert_eq!(lit.params(), vec![("count".into(), "5".into())]);
    }

    #[test]
    fn links_with_defaults_and_overrides() {
        let lit = LiterateSource::parse(DEMO).unwrap();
        let img = lit
            .link(LinkConfig::new(0xE000, 0xF000), &|_| None, &[])
            .unwrap();
        assert_eq!(img.er.unwrap().min, 0xE000);
        assert_eq!(img.ivt_entries.len(), 1);
        assert_eq!(img.reset, img.symbol("main").unwrap());

        // The `count` parameter lands in the encoded immediate.
        let a = lit
            .link(LinkConfig::new(0xE000, 0xF000), &|_| None, &[])
            .unwrap();
        let b = lit
            .link(
                LinkConfig::new(0xE000, 0xF000),
                &|_| None,
                &[("count", "9")],
            )
            .unwrap();
        assert_ne!(a.chunks, b.chunks);
    }

    #[test]
    fn vector_names_resolve() {
        let text = DEMO.replace("isr: 9 isr", "isr: timer isr");
        let lit = LiterateSource::parse(&text).unwrap();
        let resolve = |n: &str| (n == "timer").then_some(9u8);
        let img = lit
            .link(LinkConfig::new(0xE000, 0xF000), &resolve, &[])
            .unwrap();
        assert_eq!(img.ivt_entries[0].0, 9);

        let e = lit
            .link(LinkConfig::new(0xE000, 0xF000), &|_| None, &[])
            .unwrap_err();
        assert!(e.message().contains("unknown vector name"), "{e}");
    }

    #[test]
    fn asm_errors_map_back_to_file_lines() {
        let text = DEMO.replace("    mov #{count}, r4", "    bogus r4");
        let lit = LiterateSource::parse(&text).unwrap();
        let e = lit
            .link(LinkConfig::new(0xE000, 0xF000), &|_| None, &[])
            .unwrap_err();
        // The bad line is in the second block; its file line is the
        // line of `bogus r4` in the .s.md.
        assert_eq!(e.block(), Some(1));
        let span = e.span().unwrap();
        let expected_line = text
            .lines()
            .position(|l| l.contains("bogus"))
            .map(|i| i + 1)
            .unwrap();
        assert_eq!(span.line, expected_line);
        assert_eq!(span.col, 5);
        let shown = e.to_string();
        assert!(shown.contains("asm block 2"), "{shown}");
        assert!(shown.contains("unknown mnemonic"), "{shown}");
    }

    #[test]
    fn undeclared_parameter_reference_rejected() {
        let text = DEMO.replace("#{count}", "#{miscount}");
        let lit = LiterateSource::parse(&text).unwrap();
        let e = lit.flatten(&[]).unwrap_err();
        assert!(e.message().contains("miscount"), "{e}");
        assert!(e.span().is_some());
    }

    #[test]
    fn unterminated_fence_rejected() {
        let e = LiterateSource::parse("```asm\n  nop\n").unwrap_err();
        assert!(e.message().contains("never closed"), "{e}");
    }

    #[test]
    fn missing_front_matter_is_fine() {
        let lit = LiterateSource::parse("# Just prose\n\n```asm\nmain: ret\n```\n").unwrap();
        assert_eq!(lit.front.entries().count(), 0);
        assert_eq!(lit.blocks.len(), 1);
    }
}
