//! The assembler front end: MSP430 assembly text → [`SourceSection`]s.
//!
//! Supports the full core instruction set, all TI-documented emulated
//! mnemonics (`nop`, `ret`, `pop`, `br`, `clr`, `inc`, `eint`, …), `.b`
//! suffixes, labels, and the data/section directives used by the paper's
//! Fig. 4 linking scheme (`.section exec.start|exec.body|exec.leave`).

use crate::ast::{Expr, Item, LocatedItem, OperandSpec, SourceSection};
use openmsp430::isa::{Cond, OneOp, TwoOp};
use openmsp430::regs::Reg;
use std::error::Error;
use std::fmt;

/// A source position: 1-based line and column. A column of `0` means
/// "line known, column not".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (`0` = unknown).
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}", self.line, self.col)
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

/// An assembly error with its source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (`0` = unknown).
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl AsmError {
    /// The error's position.
    pub fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span(), self.msg)
    }
}

impl Error for AsmError {}

/// One source line being parsed; knows how to turn a sub-slice of the
/// raw line into a column number for diagnostics.
#[derive(Clone, Copy)]
struct LineCtx<'a> {
    raw: &'a str,
    line: usize,
}

impl LineCtx<'_> {
    /// Column (1-based) of `sub` within the raw line, when `sub` is a
    /// sub-slice of it; `0` (unknown) otherwise.
    fn col_of(&self, sub: &str) -> usize {
        let raw = self.raw.as_ptr() as usize;
        let sub = sub.as_ptr() as usize;
        if (raw..=raw + self.raw.len()).contains(&sub) {
            sub - raw + 1
        } else {
            0
        }
    }

    /// An error pointing at the start of the token `at`.
    fn err<T>(&self, at: &str, msg: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError {
            line: self.line,
            col: self.col_of(at.trim_start()),
            msg: msg.into(),
        })
    }
}

/// Default section items land in when no `.section` was seen.
pub const DEFAULT_SECTION: &str = "text";

/// Parses a register name.
fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.to_ascii_lowercase();
    match s.as_str() {
        "pc" | "r0" => Some(Reg::PC),
        "sp" | "r1" => Some(Reg::SP),
        "sr" | "r2" => Some(Reg::SR),
        "cg" | "r3" => Some(Reg::CG),
        _ => {
            let n: u8 = s.strip_prefix('r')?.parse().ok()?;
            Reg::try_r(n)
        }
    }
}

/// Parses a numeric literal: decimal, `0x…`, `0b…`, or `'c'`.
fn parse_num(s: &str) -> Option<i32> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix("'").and_then(|t| t.strip_suffix("'")) {
        let mut chars = body.chars();
        let c = chars.next()?;
        if chars.next().is_some() {
            return None;
        }
        return Some(c as i32);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v).ok()
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Parses an expression: `num`, `sym`, `sym+num`, `sym-num`.
fn parse_expr(s: &str, ctx: LineCtx<'_>) -> Result<Expr, AsmError> {
    let s = s.trim();
    if let Some(n) = parse_num(s) {
        return Ok(Expr::Num(n));
    }
    // sym+num / sym-num (scan from the right so names may contain dots).
    for (i, c) in s.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let (name, rest) = s.split_at(i);
            let name = name.trim();
            if is_ident(name) {
                if let Some(n) = parse_num(rest) {
                    return Ok(Expr::Sym {
                        name: name.to_string(),
                        addend: n,
                    });
                }
            }
        }
    }
    if is_ident(s) {
        // Registers are not valid bare expressions.
        if parse_reg(s).is_some() {
            return ctx.err(
                s,
                format!("register `{s}` used where an expression was expected"),
            );
        }
        return Ok(Expr::sym(s));
    }
    ctx.err(s, format!("cannot parse expression `{s}`"))
}

/// Parses one operand.
fn parse_operand(s: &str, ctx: LineCtx<'_>) -> Result<OperandSpec, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return ctx.err(s, "empty operand");
    }
    if let Some(rest) = s.strip_prefix('#') {
        return Ok(OperandSpec::Imm(parse_expr(rest, ctx)?));
    }
    if let Some(rest) = s.strip_prefix('&') {
        return Ok(OperandSpec::Abs(parse_expr(rest, ctx)?));
    }
    if let Some(rest) = s.strip_prefix('@') {
        let (body, inc) = match rest.strip_suffix('+') {
            Some(b) => (b, true),
            None => (rest, false),
        };
        let Some(reg) = parse_reg(body.trim()) else {
            return ctx.err(body, format!("bad register `{body}`"));
        };
        return Ok(if inc {
            OperandSpec::IndInc(reg)
        } else {
            OperandSpec::Ind(reg)
        });
    }
    if let Some(open) = s.find('(') {
        if let Some(close) = s.rfind(')') {
            if close == s.len() - 1 && close > open {
                let expr = if s[..open].trim().is_empty() {
                    Expr::Num(0)
                } else {
                    parse_expr(&s[..open], ctx)?
                };
                let Some(reg) = parse_reg(s[open + 1..close].trim()) else {
                    return ctx.err(&s[open + 1..], format!("bad index register in `{s}`"));
                };
                return Ok(OperandSpec::Idx(expr, reg));
            }
        }
        return ctx.err(s, format!("malformed indexed operand `{s}`"));
    }
    if let Some(r) = parse_reg(s) {
        return Ok(OperandSpec::Reg(r));
    }
    Ok(OperandSpec::Sym(parse_expr(s, ctx)?))
}

fn two_op_mnemonic(m: &str) -> Option<TwoOp> {
    Some(match m {
        "mov" => TwoOp::Mov,
        "add" => TwoOp::Add,
        "addc" => TwoOp::Addc,
        "subc" => TwoOp::Subc,
        "sub" => TwoOp::Sub,
        "cmp" => TwoOp::Cmp,
        "dadd" => TwoOp::Dadd,
        "bit" => TwoOp::Bit,
        "bic" => TwoOp::Bic,
        "bis" => TwoOp::Bis,
        "xor" => TwoOp::Xor,
        "and" => TwoOp::And,
        _ => return None,
    })
}

fn one_op_mnemonic(m: &str) -> Option<OneOp> {
    Some(match m {
        "rrc" => OneOp::Rrc,
        "swpb" => OneOp::Swpb,
        "rra" => OneOp::Rra,
        "sxt" => OneOp::Sxt,
        "push" => OneOp::Push,
        "call" => OneOp::Call,
        "reti" => OneOp::Reti,
        _ => return None,
    })
}

fn jump_mnemonic(m: &str) -> Option<Cond> {
    Some(match m {
        "jne" | "jnz" => Cond::Ne,
        "jeq" | "jz" => Cond::Eq,
        "jnc" | "jlo" => Cond::Nc,
        "jc" | "jhs" => Cond::C,
        "jn" => Cond::N,
        "jge" => Cond::Ge,
        "jl" => Cond::L,
        "jmp" => Cond::Always,
        _ => return None,
    })
}

/// Splits a comma-separated operand list.
fn split_operands(s: &str) -> Vec<&str> {
    if s.trim().is_empty() {
        Vec::new()
    } else {
        s.split(',').collect()
    }
}

/// Expands an emulated mnemonic into a core [`Item`], or `None` if `m` is
/// not emulated.
fn emulated(
    m: &str,
    byte: bool,
    ops: &[OperandSpec],
    ctx: LineCtx<'_>,
    at: &str,
) -> Result<Option<Item>, AsmError> {
    let unary = |ops: &[OperandSpec]| -> Result<OperandSpec, AsmError> {
        if ops.len() != 1 {
            return ctx.err(at, format!("`{m}` takes exactly one operand"));
        }
        Ok(ops[0].clone())
    };
    let nullary = |ops: &[OperandSpec]| -> Result<(), AsmError> {
        if !ops.is_empty() {
            return ctx.err(at, format!("`{m}` takes no operands"));
        }
        Ok(())
    };
    let two = |op: TwoOp, src: OperandSpec, dst: OperandSpec| Item::Two { op, byte, src, dst };
    let imm = |n: i32| OperandSpec::Imm(Expr::Num(n));

    let item = match m {
        "nop" => {
            nullary(ops)?;
            two(TwoOp::Mov, imm(0), OperandSpec::Reg(Reg::CG))
        }
        "ret" => {
            nullary(ops)?;
            two(
                TwoOp::Mov,
                OperandSpec::IndInc(Reg::SP),
                OperandSpec::Reg(Reg::PC),
            )
        }
        "pop" => two(TwoOp::Mov, OperandSpec::IndInc(Reg::SP), unary(ops)?),
        "br" => two(TwoOp::Mov, unary(ops)?, OperandSpec::Reg(Reg::PC)),
        "clr" => two(TwoOp::Mov, imm(0), unary(ops)?),
        "clrc" => {
            nullary(ops)?;
            two(TwoOp::Bic, imm(1), OperandSpec::Reg(Reg::SR))
        }
        "clrz" => {
            nullary(ops)?;
            two(TwoOp::Bic, imm(2), OperandSpec::Reg(Reg::SR))
        }
        "clrn" => {
            nullary(ops)?;
            two(TwoOp::Bic, imm(4), OperandSpec::Reg(Reg::SR))
        }
        "setc" => {
            nullary(ops)?;
            two(TwoOp::Bis, imm(1), OperandSpec::Reg(Reg::SR))
        }
        "setz" => {
            nullary(ops)?;
            two(TwoOp::Bis, imm(2), OperandSpec::Reg(Reg::SR))
        }
        "setn" => {
            nullary(ops)?;
            two(TwoOp::Bis, imm(4), OperandSpec::Reg(Reg::SR))
        }
        "dint" => {
            nullary(ops)?;
            two(TwoOp::Bic, imm(8), OperandSpec::Reg(Reg::SR))
        }
        "eint" => {
            nullary(ops)?;
            two(TwoOp::Bis, imm(8), OperandSpec::Reg(Reg::SR))
        }
        "inc" => two(TwoOp::Add, imm(1), unary(ops)?),
        "incd" => two(TwoOp::Add, imm(2), unary(ops)?),
        "dec" => two(TwoOp::Sub, imm(1), unary(ops)?),
        "decd" => two(TwoOp::Sub, imm(2), unary(ops)?),
        "inv" => two(TwoOp::Xor, imm(-1), unary(ops)?),
        "adc" => two(TwoOp::Addc, imm(0), unary(ops)?),
        "dadc" => two(TwoOp::Dadd, imm(0), unary(ops)?),
        "sbc" => two(TwoOp::Subc, imm(0), unary(ops)?),
        "tst" => two(TwoOp::Cmp, imm(0), unary(ops)?),
        "rla" => {
            let o = unary(ops)?;
            two(TwoOp::Add, o.clone(), o)
        }
        "rlc" => {
            let o = unary(ops)?;
            two(TwoOp::Addc, o.clone(), o)
        }
        _ => return Ok(None),
    };
    Ok(Some(item))
}

/// Parses a full assembly source into sections.
///
/// # Errors
///
/// Returns the first [`AsmError`] (unknown mnemonic, malformed operand,
/// bad directive, duplicate label).
///
/// # Examples
///
/// ```
/// let src = r#"
///     .section exec.body
/// loop:
///     inc  r4
///     cmp  #10, r4
///     jne  loop
///     ret
/// "#;
/// let sections = msp430_tools::asm::assemble(src)?;
/// assert_eq!(sections.len(), 1);
/// assert_eq!(sections[0].name, "exec.body");
/// # Ok::<(), msp430_tools::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<SourceSection>, AsmError> {
    let mut sections: Vec<SourceSection> = Vec::new();
    let mut current = SourceSection {
        name: DEFAULT_SECTION.to_string(),
        ..Default::default()
    };
    let mut started = false;

    let flush = |sections: &mut Vec<SourceSection>, current: &mut SourceSection| {
        if !current.items.is_empty() || !current.labels.is_empty() {
            sections.push(std::mem::take(current));
        }
    };

    for (idx, raw_line) in source.lines().enumerate() {
        let ctx = LineCtx {
            raw: raw_line,
            line: idx + 1,
        };
        let line_no = idx + 1;
        let mut line = raw_line;
        if let Some(p) = line.find(';') {
            line = &line[..p];
        }
        let mut rest = line.trim();

        // Labels (possibly several) before the statement.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if !is_ident(label) {
                break;
            }
            if current.labels.iter().any(|(n, _)| n == label) {
                return ctx.err(head, format!("duplicate label `{label}`"));
            }
            current.labels.push((label.to_string(), current.size));
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let stmt_col = ctx.col_of(rest);

        // Directives.
        if let Some(body) = rest.strip_prefix('.') {
            let (dir, args) = match body.find(char::is_whitespace) {
                Some(p) => (&body[..p], body[p..].trim()),
                None => (body, ""),
            };
            match dir {
                "section" => {
                    if !is_ident(args) {
                        return ctx.err(args, format!("bad section name `{args}`"));
                    }
                    flush(&mut sections, &mut current);
                    if let Some(pos) = sections.iter().position(|s| s.name == args) {
                        // Reopen an existing section.
                        current = sections.remove(pos);
                    } else {
                        current = SourceSection {
                            name: args.to_string(),
                            ..Default::default()
                        };
                    }
                    started = true;
                }
                "word" => {
                    let exprs = split_operands(args)
                        .iter()
                        .map(|s| parse_expr(s, ctx))
                        .collect::<Result<Vec<_>, _>>()?;
                    if exprs.is_empty() {
                        return ctx.err(rest, ".word needs at least one value");
                    }
                    push_item(&mut current, Item::Words(exprs), line_no, stmt_col);
                }
                "byte" => {
                    let exprs = split_operands(args)
                        .iter()
                        .map(|s| parse_expr(s, ctx))
                        .collect::<Result<Vec<_>, _>>()?;
                    if exprs.is_empty() {
                        return ctx.err(rest, ".byte needs at least one value");
                    }
                    push_item(&mut current, Item::Bytes(exprs), line_no, stmt_col);
                }
                "ascii" => {
                    let t = args.trim();
                    let Some(inner) = t.strip_prefix('"').and_then(|u| u.strip_suffix('"')) else {
                        return ctx.err(args, ".ascii needs a double-quoted string");
                    };
                    let bytes: Vec<Expr> = inner.bytes().map(|b| Expr::Num(b as i32)).collect();
                    push_item(&mut current, Item::Bytes(bytes), line_no, stmt_col);
                }
                "space" => {
                    let Some(n) = parse_num(args).filter(|n| (0..=0xFFFF).contains(n)) else {
                        return ctx.err(args, format!("bad .space size `{args}`"));
                    };
                    push_item(&mut current, Item::Space(n as u16), line_no, stmt_col);
                }
                "align" => {
                    push_item(&mut current, Item::Align, line_no, stmt_col);
                }
                other => return ctx.err(rest, format!("unknown directive `.{other}`")),
            }
            continue;
        }

        // Instruction.
        let (mnemonic_raw, operand_str) = match rest.find(char::is_whitespace) {
            Some(p) => (&rest[..p], rest[p..].trim()),
            None => (rest, ""),
        };
        let mnemonic_lc = mnemonic_raw.to_ascii_lowercase();
        let (mnemonic, byte) = match mnemonic_lc.strip_suffix(".b") {
            Some(m) => (m.to_string(), true),
            None => (
                mnemonic_lc
                    .strip_suffix(".w")
                    .unwrap_or(&mnemonic_lc)
                    .to_string(),
                false,
            ),
        };
        let ops = split_operands(operand_str)
            .iter()
            .map(|s| parse_operand(s, ctx))
            .collect::<Result<Vec<_>, _>>()?;

        let item = if let Some(op) = two_op_mnemonic(&mnemonic) {
            if ops.len() != 2 {
                return ctx.err(mnemonic_raw, format!("`{mnemonic}` takes two operands"));
            }
            Item::Two {
                op,
                byte,
                src: ops[0].clone(),
                dst: ops[1].clone(),
            }
        } else if let Some(op) = one_op_mnemonic(&mnemonic) {
            if op == OneOp::Reti {
                if !ops.is_empty() {
                    return ctx.err(mnemonic_raw, "`reti` takes no operands");
                }
                Item::One {
                    op,
                    byte: false,
                    opnd: OperandSpec::Reg(Reg::PC),
                }
            } else {
                if ops.len() != 1 {
                    return ctx.err(mnemonic_raw, format!("`{mnemonic}` takes one operand"));
                }
                Item::One {
                    op,
                    byte,
                    opnd: ops[0].clone(),
                }
            }
        } else if let Some(cond) = jump_mnemonic(&mnemonic) {
            if ops.len() != 1 {
                return ctx.err(mnemonic_raw, format!("`{mnemonic}` takes one target"));
            }
            let target = match &ops[0] {
                OperandSpec::Sym(e) | OperandSpec::Imm(e) => e.clone(),
                other => {
                    return ctx.err(operand_str, format!("bad jump target `{other}`"));
                }
            };
            Item::Jump { cond, target }
        } else if let Some(item) = emulated(&mnemonic, byte, &ops, ctx, mnemonic_raw)? {
            item
        } else {
            return ctx.err(mnemonic_raw, format!("unknown mnemonic `{mnemonic_raw}`"));
        };
        push_item(&mut current, item, line_no, stmt_col);
        let _ = started;
    }

    flush(&mut sections, &mut current);
    Ok(sections)
}

fn push_item(section: &mut SourceSection, item: Item, line: usize, col: usize) {
    let size = item.size_at(section.size);
    section.items.push(LocatedItem {
        item,
        offset: section.size,
        line,
        col,
    });
    section.size += size;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_registers() {
        assert_eq!(parse_reg("r0"), Some(Reg::PC));
        assert_eq!(parse_reg("PC"), Some(Reg::PC));
        assert_eq!(parse_reg("r15"), Some(Reg::r(15)));
        assert_eq!(parse_reg("r16"), None);
        assert_eq!(parse_reg("rx"), None);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse_num("42"), Some(42));
        assert_eq!(parse_num("-3"), Some(-3));
        assert_eq!(parse_num("0xFFE0"), Some(0xFFE0));
        assert_eq!(parse_num("0b101"), Some(5));
        assert_eq!(parse_num("'A'"), Some(65));
        assert_eq!(parse_num("bogus"), None);
    }

    #[test]
    fn parses_operand_forms() {
        let l = LineCtx { raw: "", line: 1 };
        assert_eq!(parse_operand("r5", l).unwrap(), OperandSpec::Reg(Reg::r(5)));
        assert_eq!(
            parse_operand("#42", l).unwrap(),
            OperandSpec::Imm(Expr::Num(42))
        );
        assert_eq!(
            parse_operand("&0x200", l).unwrap(),
            OperandSpec::Abs(Expr::Num(0x200))
        );
        assert_eq!(
            parse_operand("@r4", l).unwrap(),
            OperandSpec::Ind(Reg::r(4))
        );
        assert_eq!(
            parse_operand("@r4+", l).unwrap(),
            OperandSpec::IndInc(Reg::r(4))
        );
        assert_eq!(
            parse_operand("4(r6)", l).unwrap(),
            OperandSpec::Idx(Expr::Num(4), Reg::r(6))
        );
        assert_eq!(
            parse_operand("buf+2(r6)", l).unwrap(),
            OperandSpec::Idx(
                Expr::Sym {
                    name: "buf".into(),
                    addend: 2
                },
                Reg::r(6)
            )
        );
        assert_eq!(
            parse_operand("data", l).unwrap(),
            OperandSpec::Sym(Expr::sym("data"))
        );
    }

    #[test]
    fn assembles_basic_program() {
        let src = "
        start:
            mov #1, r4
            add r4, r5
            jmp start
        ";
        let sections = assemble(src).unwrap();
        assert_eq!(sections.len(), 1);
        let s = &sections[0];
        assert_eq!(s.name, DEFAULT_SECTION);
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.labels, vec![("start".to_string(), 0)]);
        // mov #1 uses the constant generator: 2 bytes.
        assert_eq!(s.items[1].offset, 2);
        assert_eq!(s.size, 6);
    }

    #[test]
    fn sections_split_and_reopen() {
        let src = "
            .section exec.start
            call #main
            .section exec.body
        main:
            ret
            .section exec.start
            nop
        ";
        let sections = assemble(src).unwrap();
        let names: Vec<&str> = sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["exec.body", "exec.start"]);
        let start = sections.iter().find(|s| s.name == "exec.start").unwrap();
        assert_eq!(start.items.len(), 2, "reopened section accumulates");
    }

    #[test]
    fn emulated_mnemonics_expand() {
        let src = "
            nop
            ret
            pop r7
            br #0xF000
            clr &0x0200
            eint
            dint
            inc r4
            dec r4
            inv r4
            tst r4
            rla r4
        ";
        let sections = assemble(src).unwrap();
        assert_eq!(sections[0].items.len(), 12);
        // eint == bis #8, sr via constant generator == 2 bytes.
        let eint = &sections[0].items[5];
        assert_eq!(eint.item.size_at(0), 2);
    }

    #[test]
    fn data_directives() {
        let src = "
            .word 0x1234, label
            .byte 1, 2, 3
            .align
            .ascii \"ok\"
            .space 4
        label:
        ";
        let s = &assemble(src).unwrap()[0];
        // 4 (words) + 3 (bytes) + 1 (align) + 2 (ascii) + 4 (space) = 14
        assert_eq!(s.size, 14);
        assert_eq!(s.labels, vec![("label".to_string(), 14)]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = assemble("mov r4").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(assemble("bogus r4, r5").is_err());
        assert!(assemble(".section 123bad").is_err());
        assert!(assemble("l:\nl:").is_err());
        assert!(assemble("jmp @r4").is_err());
    }

    #[test]
    fn errors_carry_columns() {
        // The mnemonic starts at column 9.
        let e = assemble("        bogus r4, r5").unwrap_err();
        assert_eq!((e.line, e.col), (1, 9));
        assert_eq!(e.to_string(), "line 1:9: unknown mnemonic `bogus`");

        // The offending operand (not the mnemonic) is pointed at.
        let e = assemble("    mov r4, #nope!").unwrap_err();
        assert_eq!((e.line, e.col), (1, 14));

        // Multi-line source: line advances, column tracks the token.
        let e = assemble("  nop\n  mov @r99, r4").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));

        // Spans survive label prefixes on the same line.
        let e = assemble("lab:  .space -4").unwrap_err();
        assert_eq!((e.line, e.col), (1, 14));
    }

    #[test]
    fn byte_suffix_parsed() {
        let s = &assemble("mov.b #0xFF, &0x0021").unwrap()[0];
        match &s.items[0].item {
            Item::Two { byte, .. } => assert!(byte),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_and_code_same_line() {
        let s = &assemble("loop: dec r4\n jnz loop").unwrap()[0];
        assert_eq!(s.labels, vec![("loop".to_string(), 0)]);
        assert_eq!(s.items.len(), 2);
    }
}
