//! Assembler abstract syntax: sections, items, operand templates and
//! symbolic expressions.
//!
//! Operand templates ([`OperandSpec`]) differ from the simulator's
//! resolved [`openmsp430::isa::Operand`] in that they may reference
//! symbols whose addresses are only known at link time.

use openmsp430::regs::Reg;
use std::fmt;

/// A symbolic expression: `symbol`, `number`, or `symbol ± number`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Num(i32),
    /// A symbol reference plus a constant addend.
    Sym {
        /// Symbol name.
        name: String,
        /// Constant addend (may be negative).
        addend: i32,
    },
}

impl Expr {
    /// A plain symbol reference.
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Sym {
            name: name.into(),
            addend: 0,
        }
    }

    /// True when no symbol is referenced.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Num(_))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Sym { name, addend } if *addend == 0 => write!(f, "{name}"),
            Expr::Sym { name, addend } if *addend > 0 => write!(f, "{name}+{addend}"),
            Expr::Sym { name, addend } => write!(f, "{name}{addend}"),
        }
    }
}

/// An operand as written in assembly, before symbol resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperandSpec {
    /// `Rn` / `pc` / `sp` / `sr`.
    Reg(Reg),
    /// `#expr` — immediate (constant-generator values collapse to
    /// single-word encodings when the expression is a literal).
    Imm(Expr),
    /// `&expr` — absolute.
    Abs(Expr),
    /// `expr(Rn)` — indexed.
    Idx(Expr, Reg),
    /// `@Rn`.
    Ind(Reg),
    /// `@Rn+`.
    IndInc(Reg),
    /// A bare symbol/number: symbolic (PC-relative) addressing.
    Sym(Expr),
}

impl OperandSpec {
    /// Number of extension words this operand will occupy.
    ///
    /// Immediates that are *literal* constant-generator values (`0`, `1`,
    /// `2`, `4`, `8`, `-1`) are free; symbolic immediates always reserve a
    /// word (their value is unknown until link time).
    pub fn ext_words(&self) -> u16 {
        match self {
            OperandSpec::Reg(_) | OperandSpec::Ind(_) | OperandSpec::IndInc(_) => 0,
            OperandSpec::Imm(Expr::Num(n)) => match n {
                0 | 1 | 2 | 4 | 8 | -1 => 0,
                _ => 1,
            },
            OperandSpec::Imm(_)
            | OperandSpec::Abs(_)
            | OperandSpec::Idx(..)
            | OperandSpec::Sym(_) => 1,
        }
    }
}

impl fmt::Display for OperandSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandSpec::Reg(r) => write!(f, "{r}"),
            OperandSpec::Imm(e) => write!(f, "#{e}"),
            OperandSpec::Abs(e) => write!(f, "&{e}"),
            OperandSpec::Idx(e, r) => write!(f, "{e}({r})"),
            OperandSpec::Ind(r) => write!(f, "@{r}"),
            OperandSpec::IndInc(r) => write!(f, "@{r}+"),
            OperandSpec::Sym(e) => write!(f, "{e}"),
        }
    }
}

/// One assembled item within a section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A Format I instruction.
    Two {
        /// Operation.
        op: openmsp430::isa::TwoOp,
        /// `.b` suffix.
        byte: bool,
        /// Source template.
        src: OperandSpec,
        /// Destination template.
        dst: OperandSpec,
    },
    /// A Format II instruction.
    One {
        /// Operation.
        op: openmsp430::isa::OneOp,
        /// `.b` suffix.
        byte: bool,
        /// Operand template (dummy `Reg(PC)` for `RETI`).
        opnd: OperandSpec,
    },
    /// A conditional/unconditional jump to a symbol or absolute address.
    Jump {
        /// Condition.
        cond: openmsp430::isa::Cond,
        /// Jump target.
        target: Expr,
    },
    /// `.word expr, …` — literal data words.
    Words(Vec<Expr>),
    /// `.byte expr, …` — literal data bytes.
    Bytes(Vec<Expr>),
    /// `.space n` — zero fill.
    Space(u16),
    /// `.align 2` — pad to word alignment.
    Align,
}

impl Item {
    /// Size of this item in bytes *given the current offset* (alignment
    /// is offset-dependent).
    pub fn size_at(&self, offset: u16) -> u16 {
        match self {
            Item::Two { src, dst, .. } => 2 + 2 * (src.ext_words() + dst.ext_words()),
            Item::One {
                op: openmsp430::isa::OneOp::Reti,
                ..
            } => 2,
            Item::One { opnd, .. } => 2 + 2 * opnd.ext_words(),
            Item::Jump { .. } => 2,
            Item::Words(ws) => 2 * ws.len() as u16,
            Item::Bytes(bs) => bs.len() as u16,
            Item::Space(n) => *n,
            Item::Align => offset & 1,
        }
    }

    /// True for executable instructions (vs. data directives).
    pub fn is_instruction(&self) -> bool {
        matches!(
            self,
            Item::Two { .. } | Item::One { .. } | Item::Jump { .. }
        )
    }
}

/// A located item: section offset + source line, for diagnostics and
/// `ERmax` determination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedItem {
    /// The item.
    pub item: Item,
    /// Byte offset within its section.
    pub offset: u16,
    /// 1-based source line number.
    pub line: usize,
    /// 1-based source column of the statement (`0` = unknown).
    pub col: usize,
}

/// A parsed section: a name (e.g. `text`, `exec.body`), its items, and
/// the labels defined inside it (as section-relative offsets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceSection {
    /// Section name.
    pub name: String,
    /// Items in source order with their offsets.
    pub items: Vec<LocatedItem>,
    /// Labels defined in this section: name → offset.
    pub labels: Vec<(String, u16)>,
    /// Total size in bytes.
    pub size: u16,
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmsp430::isa::TwoOp;

    #[test]
    fn ext_word_accounting() {
        assert_eq!(OperandSpec::Reg(Reg::r(4)).ext_words(), 0);
        assert_eq!(
            OperandSpec::Imm(Expr::Num(1)).ext_words(),
            0,
            "constant generator"
        );
        assert_eq!(OperandSpec::Imm(Expr::Num(-1)).ext_words(), 0);
        assert_eq!(OperandSpec::Imm(Expr::Num(100)).ext_words(), 1);
        assert_eq!(
            OperandSpec::Imm(Expr::sym("label")).ext_words(),
            1,
            "symbols reserve a word"
        );
        assert_eq!(OperandSpec::Sym(Expr::sym("x")).ext_words(), 1);
    }

    #[test]
    fn item_sizes() {
        let i = Item::Two {
            op: TwoOp::Mov,
            byte: false,
            src: OperandSpec::Imm(Expr::Num(0x1234)),
            dst: OperandSpec::Abs(Expr::Num(0x0200)),
        };
        assert_eq!(i.size_at(0), 6);
        assert_eq!(Item::Align.size_at(3), 1);
        assert_eq!(Item::Align.size_at(4), 0);
        assert_eq!(Item::Bytes(vec![Expr::Num(1); 3]).size_at(0), 3);
        assert_eq!(Item::Space(10).size_at(0), 10);
    }

    #[test]
    fn expr_display() {
        assert_eq!(Expr::Num(5).to_string(), "5");
        assert_eq!(Expr::sym("foo").to_string(), "foo");
        assert_eq!(
            Expr::Sym {
                name: "foo".into(),
                addend: 2
            }
            .to_string(),
            "foo+2"
        );
        assert_eq!(
            Expr::Sym {
                name: "foo".into(),
                addend: -2
            }
            .to_string(),
            "foo-2"
        );
    }
}
