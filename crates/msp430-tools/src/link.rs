//! The linker: places sections, resolves symbols, emits machine code and
//! generates the interrupt vector table.
//!
//! This reproduces the paper's Fig. 4 linking scheme, which is the whole
//! of ASAP's \[AP2\] (*ISR Immutability*): functions labelled
//! `exec.start` / `exec.body` / `exec.leave` are placed contiguously —
//! entry stub first, main body and trusted ISRs in the middle, exit stub
//! last — so that:
//!
//! * `ERmin` = first word of `exec.start` (the only legal entry, LTL 2);
//! * `ERmax` = the last instruction of `exec.leave` (the only legal exit,
//!   LTL 1);
//! * every trusted ISR lies *inside* `[ERmin, ER end]` and therefore
//!   inherits APEX's `ER`-immutability protection.
//!
//! Everything else (`text` and any other section) is untrusted code placed
//! outside `ER`.

use crate::asm::{assemble, AsmError, Span};
use crate::ast::{Expr, Item, OperandSpec, SourceSection};
use openmsp430::cpu::vector_addr;
use openmsp430::encode::encode;
use openmsp430::isa::{Instr, Operand};
use openmsp430::mem::{MemRegion, Memory};
use openmsp430::regs::Reg;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The three `ER` sections, in placement order.
pub const EXEC_SECTIONS: [&str; 3] = ["exec.start", "exec.body", "exec.leave"];

/// A link-time error, with the source position of the offending
/// statement when one is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    msg: String,
    span: Option<Span>,
}

impl LinkError {
    pub(crate) fn new(msg: impl Into<String>) -> LinkError {
        LinkError {
            msg: msg.into(),
            span: None,
        }
    }

    /// Attaches a position unless one is already recorded (the deepest
    /// frame wins — an assembler span survives relinking).
    pub(crate) fn at(mut self, line: usize, col: usize) -> LinkError {
        if self.span.is_none() {
            self.span = Some(Span { line, col });
        }
        self
    }

    /// The error's source position, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The bare description, without the position prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "link error at {span}: {}", self.msg),
            None => write!(f, "link error: {}", self.msg),
        }
    }
}

impl Error for LinkError {}

impl From<AsmError> for LinkError {
    fn from(e: AsmError) -> LinkError {
        LinkError {
            span: Some(e.span()),
            msg: e.msg,
        }
    }
}

/// Linker configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkConfig {
    /// Base address for the `exec.*` group — becomes `ERmin`.
    pub exec_base: u16,
    /// Base address for untrusted code (`text` and unknown sections).
    pub text_base: u16,
    /// Base address for the `data` section, when used.
    pub data_base: Option<u16>,
    /// IVT entries: vector → symbol of the ISR entry point.
    pub ivt: Vec<(u8, String)>,
    /// Symbol the reset vector points at (default: `main` if defined,
    /// else the text base).
    pub reset: Option<String>,
}

impl LinkConfig {
    /// A configuration placing `ER` at `exec_base` and untrusted text at
    /// `text_base`.
    pub fn new(exec_base: u16, text_base: u16) -> LinkConfig {
        LinkConfig {
            exec_base,
            text_base,
            data_base: None,
            ivt: Vec::new(),
            reset: None,
        }
    }

    /// Adds an IVT entry: `vector` will point at `symbol`.
    pub fn vector(mut self, vector: u8, symbol: impl Into<String>) -> LinkConfig {
        self.ivt.push((vector, symbol.into()));
        self
    }

    /// Sets the reset-vector symbol.
    pub fn reset(mut self, symbol: impl Into<String>) -> LinkConfig {
        self.reset = Some(symbol.into());
        self
    }

    /// Sets the data-section base address.
    pub fn data_base(mut self, base: u16) -> LinkConfig {
        self.data_base = Some(base);
        self
    }
}

/// The `ER` bounds produced by linking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErBounds {
    /// Legal entry point (`ERmin`): address of the first instruction of
    /// `exec.start`.
    pub min: u16,
    /// Legal exit point (`ERmax`): address of the *last instruction* of
    /// `exec.leave`.
    pub exit: u16,
    /// Full byte range occupied by the `exec.*` group (used for
    /// immutability monitoring).
    pub region: MemRegion,
}

/// A placed section (diagnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedSection {
    /// Section name.
    pub name: String,
    /// Where it landed.
    pub region: MemRegion,
}

/// The linked memory image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Image {
    /// Load segments: `(base address, bytes)`.
    pub chunks: Vec<(u16, Vec<u8>)>,
    /// Global symbol table.
    pub symbols: BTreeMap<String, u16>,
    /// Placement report.
    pub sections: Vec<PlacedSection>,
    /// `ER` bounds, when any `exec.*` section was present.
    pub er: Option<ErBounds>,
    /// Generated IVT entries (vector, ISR address).
    pub ivt_entries: Vec<(u8, u16)>,
    /// Reset-vector target.
    pub reset: u16,
}

impl Image {
    /// Loads all chunks and the IVT into a memory.
    pub fn load_into(&self, mem: &mut Memory) {
        for (base, bytes) in &self.chunks {
            mem.load(*base, bytes);
        }
        for (vector, addr) in &self.ivt_entries {
            mem.write_word(vector_addr(*vector), *addr);
        }
        mem.write_word(vector_addr(openmsp430::cpu::RESET_VECTOR), self.reset);
    }

    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// Total bytes of loadable code/data (excluding the IVT).
    pub fn loaded_len(&self) -> usize {
        self.chunks.iter().map(|(_, b)| b.len()).sum()
    }
}

struct Resolver<'a> {
    symbols: &'a BTreeMap<String, u16>,
}

impl Resolver<'_> {
    fn resolve(&self, e: &Expr) -> Result<i32, LinkError> {
        match e {
            Expr::Num(n) => Ok(*n),
            Expr::Sym { name, addend } => {
                let base = self
                    .symbols
                    .get(name)
                    .ok_or_else(|| LinkError::new(format!("undefined symbol `{name}`")))?;
                Ok(*base as i32 + addend)
            }
        }
    }

    fn resolve_word(&self, e: &Expr) -> Result<u16, LinkError> {
        let v = self.resolve(e)?;
        if !(-0x8000..=0xFFFF).contains(&v) {
            return Err(LinkError::new(format!("value {v} out of 16-bit range")));
        }
        Ok(v as u16)
    }

    fn resolve_byte(&self, e: &Expr) -> Result<u8, LinkError> {
        let v = self.resolve(e)?;
        if !(-0x80..=0xFF).contains(&v) {
            return Err(LinkError::new(format!("value {v} out of 8-bit range")));
        }
        Ok(v as u8)
    }

    /// Lowers an operand template to a concrete operand. `ext_addr` is the
    /// address the operand's extension word would occupy (for symbolic
    /// mode).
    fn lower_operand(&self, spec: &OperandSpec, ext_addr: u16) -> Result<Operand, LinkError> {
        Ok(match spec {
            OperandSpec::Reg(r) => Operand::Reg(*r),
            OperandSpec::Imm(Expr::Num(n)) if matches!(n, 0 | 1 | 2 | 4 | 8 | -1) => {
                Operand::Const(*n as u16)
            }
            OperandSpec::Imm(e) => Operand::Immediate(self.resolve_word(e)?),
            OperandSpec::Abs(e) => Operand::Absolute(self.resolve_word(e)?),
            OperandSpec::Idx(e, r) => Operand::Indexed {
                base: *r,
                offset: self.resolve_word(e)? as i16,
            },
            OperandSpec::Ind(r) => Operand::Indirect(*r),
            OperandSpec::IndInc(r) => Operand::IndirectInc(*r),
            OperandSpec::Sym(e) => {
                let target = self.resolve_word(e)?;
                let offset = target.wrapping_sub(ext_addr) as i16;
                Operand::Indexed {
                    base: Reg::PC,
                    offset,
                }
            }
        })
    }
}

fn encode_item(item: &Item, addr: u16, res: &Resolver<'_>) -> Result<Vec<u8>, LinkError> {
    let werr = |e: openmsp430::encode::EncodeError| LinkError::new(e.to_string());
    let words_to_bytes = |words: Vec<u16>| {
        let mut out = Vec::with_capacity(words.len() * 2);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    };
    match item {
        Item::Two { op, byte, src, dst } => {
            let src_ext = addr.wrapping_add(2);
            let src_op = res.lower_operand(src, src_ext)?;
            let dst_ext = src_ext.wrapping_add(2 * openmsp430::isa::ext_word_count(&src_op));
            let dst_op = res.lower_operand(dst, dst_ext)?;
            let instr = Instr::Two {
                op: *op,
                byte: *byte,
                src: src_op,
                dst: dst_op,
            };
            Ok(words_to_bytes(encode(&instr).map_err(werr)?))
        }
        Item::One { op, byte, opnd } => {
            let opnd = res.lower_operand(opnd, addr.wrapping_add(2))?;
            let instr = Instr::One {
                op: *op,
                byte: *byte,
                opnd,
            };
            Ok(words_to_bytes(encode(&instr).map_err(werr)?))
        }
        Item::Jump { cond, target } => {
            let target = res.resolve_word(target)?;
            let pc_next = addr.wrapping_add(2);
            let delta = target.wrapping_sub(pc_next) as i16;
            if delta % 2 != 0 {
                return Err(LinkError::new(format!("jump target {target:#06x} is odd")));
            }
            let offset = delta / 2;
            if !(-512..=511).contains(&offset) {
                return Err(LinkError::new(format!(
                    "jump to {target:#06x} out of range ({offset} words)"
                )));
            }
            let instr = Instr::Jump {
                cond: *cond,
                offset,
            };
            Ok(words_to_bytes(encode(&instr).map_err(werr)?))
        }
        Item::Words(ws) => {
            let mut out = Vec::with_capacity(ws.len() * 2);
            for w in ws {
                out.extend_from_slice(&res.resolve_word(w)?.to_le_bytes());
            }
            Ok(out)
        }
        Item::Bytes(bs) => bs.iter().map(|b| res.resolve_byte(b)).collect(),
        Item::Space(n) => Ok(vec![0u8; *n as usize]),
        Item::Align => Ok(vec![0u8; (addr & 1) as usize]),
    }
}

/// Links already-assembled sections into an [`Image`].
///
/// # Errors
///
/// Returns a [`LinkError`] on undefined symbols, overlapping placements,
/// out-of-range jumps or unencodable instructions.
pub fn link_sections(sections: &[SourceSection], config: &LinkConfig) -> Result<Image, LinkError> {
    // 1. Assign base addresses.
    let mut placed: Vec<(&SourceSection, u16)> = Vec::new();
    let mut exec_cursor = config.exec_base;
    let mut er_sections: Vec<(&SourceSection, u16)> = Vec::new();
    for name in EXEC_SECTIONS {
        if let Some(s) = sections.iter().find(|s| s.name == name) {
            placed.push((s, exec_cursor));
            er_sections.push((s, exec_cursor));
            exec_cursor = exec_cursor
                .checked_add(s.size)
                .ok_or_else(|| LinkError::new("exec group overflows address space"))?;
            if !exec_cursor.is_multiple_of(2) {
                exec_cursor += 1; // keep instructions word aligned
            }
        }
    }
    let mut text_cursor = config.text_base;
    let mut data_cursor = config.data_base;
    for s in sections {
        if EXEC_SECTIONS.contains(&s.name.as_str()) {
            continue;
        }
        if s.name == "data" {
            if let Some(base) = data_cursor {
                placed.push((s, base));
                data_cursor = Some(base + s.size + (s.size & 1));
                continue;
            }
        }
        placed.push((s, text_cursor));
        text_cursor = text_cursor
            .checked_add(s.size)
            .ok_or_else(|| LinkError::new("text overflows address space"))?;
        if !text_cursor.is_multiple_of(2) {
            text_cursor += 1;
        }
    }

    // 2. Overlap check.
    let regions: Vec<PlacedSection> = placed
        .iter()
        .filter(|(s, _)| s.size > 0)
        .map(|(s, base)| PlacedSection {
            name: s.name.clone(),
            region: MemRegion::with_len(*base, s.size as u32),
        })
        .collect();
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            if regions[i].region.overlaps(&regions[j].region) {
                return Err(LinkError::new(format!(
                    "sections `{}` {} and `{}` {} overlap",
                    regions[i].name, regions[i].region, regions[j].name, regions[j].region
                )));
            }
        }
    }

    // 3. Build the symbol table.
    let mut symbols: BTreeMap<String, u16> = BTreeMap::new();
    for (s, base) in &placed {
        for (label, offset) in &s.labels {
            if symbols.insert(label.clone(), base + offset).is_some() {
                return Err(LinkError::new(format!("duplicate symbol `{label}`")));
            }
        }
    }

    // 4. Encode.
    let res = Resolver { symbols: &symbols };
    let mut chunks: Vec<(u16, Vec<u8>)> = Vec::new();
    for (s, base) in &placed {
        let mut bytes: Vec<u8> = Vec::with_capacity(s.size as usize);
        for li in &s.items {
            let addr = base + li.offset;
            debug_assert_eq!(addr as usize, *base as usize + bytes.len());
            bytes.extend(encode_item(&li.item, addr, &res).map_err(|e| e.at(li.line, li.col))?);
        }
        if !bytes.is_empty() {
            chunks.push((*base, bytes));
        }
    }

    // 5. ER bounds: ERmax is the last *instruction* of the exec group.
    let er = if er_sections.is_empty() {
        None
    } else {
        let min = config.exec_base;
        let end = {
            let (s, base) = er_sections.last().unwrap();
            base + s.size
        };
        let exit = er_sections
            .iter()
            .rev()
            .find_map(|(s, base)| {
                s.items
                    .iter()
                    .rev()
                    .find(|li| li.item.is_instruction())
                    .map(|li| base + li.offset)
            })
            .ok_or_else(|| LinkError::new("exec group contains no instructions"))?;
        Some(ErBounds {
            min,
            exit,
            region: MemRegion::new(min, end.saturating_sub(1)),
        })
    };

    // 6. IVT.
    let mut ivt_entries = Vec::new();
    for (vector, sym) in &config.ivt {
        if *vector >= openmsp430::cpu::IVT_VECTORS {
            return Err(LinkError::new(format!("vector {vector} out of range")));
        }
        let addr = *symbols
            .get(sym)
            .ok_or_else(|| LinkError::new(format!("undefined ISR symbol `{sym}`")))?;
        ivt_entries.push((*vector, addr));
    }
    let reset = match &config.reset {
        Some(sym) => *symbols
            .get(sym)
            .ok_or_else(|| LinkError::new(format!("undefined reset symbol `{sym}`")))?,
        None => symbols.get("main").copied().unwrap_or(config.text_base),
    };

    Ok(Image {
        chunks,
        symbols,
        sections: regions,
        er,
        ivt_entries,
        reset,
    })
}

/// Assembles and links a single source in one call.
///
/// # Errors
///
/// Propagates assembler and linker errors.
///
/// # Examples
///
/// ```
/// use msp430_tools::link::{link, LinkConfig};
///
/// let src = r#"
///     .section exec.start
/// startER:
///     call #body
/// exitER:
///     ret
///     .section exec.body
/// body:
///     inc r4
///     ret
///     .section text
/// main:
///     jmp main
/// "#;
/// let image = link(src, &LinkConfig::new(0xE000, 0xF000))?;
/// let er = image.er.unwrap();
/// assert_eq!(er.min, 0xE000);
/// assert!(image.symbol("body").unwrap() > er.min);
/// # Ok::<(), msp430_tools::link::LinkError>(())
/// ```
pub fn link(source: &str, config: &LinkConfig) -> Result<Image, LinkError> {
    let sections = assemble(source)?;
    link_sections(&sections, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "
        .section exec.start
    startER:
        call #body
    exit_jump:
        jmp do_exit
        .section exec.body
    body:
        mov #5, r4
    loop:
        dec r4
        jnz loop
        ret
        .section exec.leave
    do_exit:
    exitER:
        ret
        .section text
    main:
        call #startER
    idle:
        jmp idle
    ";

    #[test]
    fn links_and_orders_exec_sections() {
        let img = link(SIMPLE, &LinkConfig::new(0xE000, 0xF000)).unwrap();
        let er = img.er.expect("er computed");
        assert_eq!(er.min, 0xE000);
        let start = img.symbol("startER").unwrap();
        let body = img.symbol("body").unwrap();
        let exit = img.symbol("exitER").unwrap();
        assert_eq!(start, 0xE000);
        assert!(body > start, "body after start");
        assert!(exit > body, "leave after body");
        assert_eq!(er.exit, exit, "ERmax is the final ret");
        assert!(er.region.contains(er.exit));
        assert_eq!(img.symbol("main").unwrap(), 0xF000);
        assert_eq!(img.reset, 0xF000, "reset defaults to main");
    }

    #[test]
    fn image_loads_and_runs() {
        use openmsp430::layout::MemLayout;
        use openmsp430::mcu::Mcu;

        let img = link(SIMPLE, &LinkConfig::new(0xE000, 0xF000)).unwrap();
        let mut mcu = Mcu::new(MemLayout::default());
        img.load_into(&mut mcu.mem);
        mcu.reset();
        assert_eq!(mcu.cpu.regs.pc(), 0xF000);
        // Run: main calls startER, which runs the count-down and returns.
        for _ in 0..100 {
            mcu.step();
            if mcu.cpu.regs.pc() == img.symbol("idle").unwrap() {
                break;
            }
        }
        assert_eq!(mcu.cpu.regs.pc(), img.symbol("idle").unwrap());
        assert_eq!(mcu.cpu.regs.get(openmsp430::regs::Reg::r(4)), 0);
    }

    #[test]
    fn ivt_generation() {
        let src = "
            .section exec.body
        isr:
            reti
            .section text
        main:
            jmp main
        ";
        let cfg = LinkConfig::new(0xE000, 0xF000)
            .vector(9, "isr")
            .reset("main");
        let img = link(src, &cfg).unwrap();
        assert_eq!(img.ivt_entries, vec![(9, img.symbol("isr").unwrap())]);
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        assert_eq!(mem.read_word(0xFFF2), img.symbol("isr").unwrap());
        assert_eq!(mem.read_word(0xFFFE), img.symbol("main").unwrap());
    }

    #[test]
    fn undefined_symbol_is_an_error() {
        let e = link("jmp nowhere", &LinkConfig::new(0xE000, 0xF000)).unwrap_err();
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn out_of_range_jump_is_an_error() {
        let src = "
        start:
            jmp far
            .space 2000
        far:
            ret
        ";
        let e = link(src, &LinkConfig::new(0xE000, 0xF000)).unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn link_errors_point_at_source() {
        // `jmp far` sits on line 3, column 5.
        let src = "\nstart:\n    jmp far\n    .space 2000\nfar:\n    ret\n";
        let e = link(src, &LinkConfig::new(0xE000, 0xF000)).unwrap_err();
        let span = e.span().expect("jump-range errors carry a span");
        assert_eq!((span.line, span.col), (3, 5));
        assert!(e.to_string().starts_with("link error at line 3:5:"));

        // Undefined symbols point at the statement that referenced them.
        let e = link("  mov #lost, r4", &LinkConfig::new(0xE000, 0xF000)).unwrap_err();
        let span = e.span().expect("resolver errors carry a span");
        assert_eq!((span.line, span.col), (1, 3));
        assert!(e.message().contains("lost"));

        // Assembler errors keep their (finer) column through linking.
        let e = link("  mov r4", &LinkConfig::new(0xE000, 0xF000)).unwrap_err();
        assert_eq!(e.span().map(|s| (s.line, s.col)), Some((1, 3)));
    }

    #[test]
    fn overlapping_sections_rejected() {
        let src = "
            .section exec.body
            .space 0x1000
            .section text
        main:
            ret
        ";
        // text at 0xE800 lands inside the 4 KiB exec.body at 0xE000.
        let e = link(src, &LinkConfig::new(0xE000, 0xE800)).unwrap_err();
        assert!(e.to_string().contains("overlap"));
    }

    #[test]
    fn symbolic_addressing_resolves() {
        let src = "
            .section text
        main:
            mov counter, r4
            inc r4
            mov r4, counter
        spin:
            jmp spin
        counter:
            .word 41
        ";
        let img = link(src, &LinkConfig::new(0xE000, 0xF000)).unwrap();
        let mut mcu = openmsp430::mcu::Mcu::new(openmsp430::layout::MemLayout::default());
        img.load_into(&mut mcu.mem);
        mcu.reset();
        for _ in 0..3 {
            mcu.step();
        }
        assert_eq!(mcu.mem.read_word(img.symbol("counter").unwrap()), 42);
    }

    #[test]
    fn data_section_placement() {
        let src = "
            .section data
        buf:
            .space 16
            .section text
        main:
            ret
        ";
        let cfg = LinkConfig::new(0xE000, 0xF000).data_base(0x0400);
        let img = link(src, &cfg).unwrap();
        assert_eq!(img.symbol("buf"), Some(0x0400));
    }

    #[test]
    fn er_absent_without_exec_sections() {
        let img = link("main: ret", &LinkConfig::new(0xE000, 0xF000)).unwrap();
        assert!(img.er.is_none());
    }

    #[test]
    fn duplicate_labels_across_sections_rejected() {
        let src = "
            .section text
        x:
            ret
            .section exec.body
        x:
            ret
        ";
        assert!(link(src, &LinkConfig::new(0xE000, 0xF000)).is_err());
    }
}
