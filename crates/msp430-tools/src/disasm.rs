//! Linear-sweep disassembler over a memory image, with symbol
//! annotation. Used for debugging, waveform annotation and round-trip
//! testing of the assembler.

use openmsp430::decode::decode;
use openmsp430::isa::Instr;
use openmsp430::mem::Memory;
use std::collections::BTreeMap;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u16,
    /// Decoded instruction.
    pub instr: Instr,
    /// Encoded size in bytes.
    pub size: u16,
    /// Rendered text (with a label prefix when a symbol matches).
    pub text: String,
}

/// Disassembles instructions from `start` until `end` (exclusive),
/// annotating addresses found in `symbols`.
///
/// # Examples
///
/// ```
/// use msp430_tools::disasm::disassemble;
/// use openmsp430::mem::Memory;
/// use std::collections::BTreeMap;
///
/// let mut mem = Memory::new();
/// mem.write_word(0xE000, 0x4034); // mov #imm, r4
/// mem.write_word(0xE002, 0x002A);
/// let lines = disassemble(&mem, 0xE000, 0xE004, &BTreeMap::new());
/// assert_eq!(lines.len(), 1);
/// assert!(lines[0].text.contains("mov"));
/// ```
pub fn disassemble(
    mem: &Memory,
    start: u16,
    end: u16,
    symbols: &BTreeMap<String, u16>,
) -> Vec<DisasmLine> {
    let by_addr: BTreeMap<u16, &str> = symbols
        .iter()
        .map(|(name, addr)| (*addr, name.as_str()))
        .collect();
    let mut out = Vec::new();
    let mut pc = start & !1;
    while pc < end {
        let d = decode(|a| mem.read_word(a), pc);
        let label = by_addr
            .get(&pc)
            .map(|n| format!("{n}: "))
            .unwrap_or_default();
        out.push(DisasmLine {
            addr: pc,
            instr: d.instr,
            size: d.size,
            text: format!("{pc:#06x}: {label}{}", d.instr),
        });
        let next = pc.wrapping_add(d.size);
        if next <= pc {
            break; // wrapped around the address space
        }
        pc = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{link, LinkConfig};

    #[test]
    fn disassembles_linked_output() {
        let src = "
            .section text
        main:
            mov #0x1234, r4
            add r4, r5
        spin:
            jmp spin
        ";
        let img = link(src, &LinkConfig::new(0xE000, 0xF000)).unwrap();
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        let lines = disassemble(&mem, 0xF000, 0xF008, &img.symbols);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].text.contains("main: "));
        assert!(lines[0].text.contains("mov"));
        assert!(lines[2].text.contains("jmp"));
    }

    #[test]
    fn stops_at_end() {
        let mem = Memory::new();
        let lines = disassemble(&mem, 0xFFFC, 0xFFFE, &BTreeMap::new());
        assert_eq!(lines.len(), 1);
    }
}
