//! # msp430-tools — assembler, linker and disassembler
//!
//! The toolchain half of ASAP's \[AP2\] (*ISR Immutability*): the paper
//! achieves ISR immutability purely by *linking* trusted ISR binaries
//! inside the executable region `ER` (Fig. 4). This crate provides:
//!
//! * [`asm`] — a two-pass MSP430 assembler (full core set, all emulated
//!   mnemonics, `.b` suffixes, labels, data directives, named sections);
//! * [`link`](mod@link) — a region/section linker that places `exec.start`,
//!   `exec.body` and `exec.leave` contiguously to derive
//!   `ERmin`/`ERmax`, resolves symbols, and generates the IVT;
//! * [`disasm`] — a linear-sweep disassembler for debugging and
//!   round-trip tests.
//!
//! # Examples
//!
//! ```
//! use msp430_tools::link::{link, LinkConfig};
//!
//! let src = r#"
//!     .section exec.start
//! startER:
//!     call #task
//!     .section exec.leave
//! exitER:
//!     ret
//!     .section exec.body
//! task:                ; trusted ISR/body code, placed inside ER
//!     ret
//!     .section text
//! main:
//!     call #startER
//! spin:
//!     jmp spin
//! "#;
//! let image = link(src, &LinkConfig::new(0xE000, 0xF000))?;
//! let er = image.er.unwrap();
//! assert_eq!(er.min, 0xE000);
//! assert!(er.region.contains(image.symbol("task").unwrap()));
//! # Ok::<(), msp430_tools::link::LinkError>(())
//! ```

pub mod asm;
pub mod ast;
pub mod disasm;
pub mod link;
pub mod literate;

pub use asm::{assemble, AsmError, Span};
pub use disasm::disassemble;
pub use link::{link, ErBounds, Image, LinkConfig, LinkError};
pub use literate::{LiterateError, LiterateSource};
