//! A Timer_A-style up-mode timer with compare interrupt.
//!
//! This is the peripheral the paper's syringe-pump example (§3) relies
//! on: the `ER` programs a dosage period into the compare register,
//! enters a low-power mode, and is woken by the timer ISR.

use openmsp430::mem::MemRegion;
use openmsp430::periph::Peripheral;
use std::any::Any;

/// Default MMIO base (mirrors Timer_A at `0x0160`).
pub const TIMER_BASE: u16 = 0x0160;

/// Default interrupt vector for the timer (vector 9, address `0xFFF2`).
pub const TIMER_VECTOR: u8 = 9;

/// Register offsets from the base address.
pub mod reg {
    /// Control: bits \[5:4\] mode (0 = stop, 1 = up), bit 2 `TACLR`,
    /// bit 1 `TAIE`, bit 0 `TAIFG`.
    pub const CTL: u16 = 0x0;
    /// Current counter value.
    pub const TAR: u16 = 0x2;
    /// Compare/period register.
    pub const CCR0: u16 = 0x4;
}

/// Control-register bits.
pub mod ctl_bits {
    /// Interrupt flag (set by hardware on wrap, cleared by software or
    /// on interrupt service).
    pub const TAIFG: u16 = 0x0001;
    /// Interrupt enable.
    pub const TAIE: u16 = 0x0002;
    /// Counter clear (write-only strobe).
    pub const TACLR: u16 = 0x0004;
    /// Up-mode enable (simplified mode field).
    pub const MC_UP: u16 = 0x0010;
}

/// A compare timer counting MCLK cycles.
///
/// # Examples
///
/// ```
/// use periph::timer::{ctl_bits, reg, Timer, TIMER_BASE};
/// use openmsp430::periph::Peripheral;
///
/// let mut t = Timer::new();
/// t.write(TIMER_BASE + reg::CCR0, 100, false);
/// t.write(TIMER_BASE + reg::CTL, ctl_bits::MC_UP | ctl_bits::TAIE, false);
/// t.tick(99);
/// assert_eq!(t.irq_lines(), 0);
/// t.tick(1);
/// assert_ne!(t.irq_lines(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Timer {
    base: u16,
    vector: u8,
    ctl: u16,
    tar: u32,
    ccr0: u16,
    /// Number of expiries since reset (diagnostic).
    expiries: u64,
}

impl Default for Timer {
    fn default() -> Timer {
        Timer::new()
    }
}

impl Timer {
    /// Creates a timer at the default base/vector.
    pub fn new() -> Timer {
        Timer::with_base(TIMER_BASE, TIMER_VECTOR)
    }

    /// Creates a timer at a custom MMIO base and interrupt vector.
    pub fn with_base(base: u16, vector: u8) -> Timer {
        Timer {
            base,
            vector,
            ctl: 0,
            tar: 0,
            ccr0: 0,
            expiries: 0,
        }
    }

    /// Number of compare events since reset.
    pub fn expiries(&self) -> u64 {
        self.expiries
    }

    /// True when the timer is running in up mode.
    pub fn running(&self) -> bool {
        self.ctl & ctl_bits::MC_UP != 0
    }
}

impl Peripheral for Timer {
    fn name(&self) -> &'static str {
        "timer_a"
    }

    fn mmio(&self) -> MemRegion {
        MemRegion::new(self.base, self.base + 0x5)
    }

    fn read(&mut self, addr: u16, _byte: bool) -> u16 {
        match addr - self.base {
            x if x < 0x2 => self.ctl,
            x if x < 0x4 => self.tar as u16,
            _ => self.ccr0,
        }
    }

    fn write(&mut self, addr: u16, val: u16, _byte: bool) {
        match addr - self.base {
            x if x < 0x2 => {
                self.ctl = val & !ctl_bits::TACLR;
                if val & ctl_bits::TACLR != 0 {
                    self.tar = 0;
                }
            }
            x if x < 0x4 => self.tar = val as u32,
            _ => self.ccr0 = val,
        }
    }

    fn tick(&mut self, cycles: u64) {
        if !self.running() || self.ccr0 == 0 {
            return;
        }
        let period = self.ccr0 as u64;
        let mut tar = self.tar as u64 + cycles;
        while tar >= period {
            tar -= period;
            self.ctl |= ctl_bits::TAIFG;
            self.expiries += 1;
        }
        self.tar = tar as u32;
    }

    fn masters_dma(&self) -> bool {
        false
    }

    fn irq_lines(&self) -> u16 {
        if self.ctl & ctl_bits::TAIE != 0 && self.ctl & ctl_bits::TAIFG != 0 {
            1 << self.vector
        } else {
            0
        }
    }

    fn ack_irq(&mut self, vector: u8) {
        if vector == self.vector {
            self.ctl &= !ctl_bits::TAIFG;
        }
    }

    fn reset(&mut self) {
        self.ctl = 0;
        self.tar = 0;
        self.ccr0 = 0;
        self.expiries = 0;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up_timer(period: u16) -> Timer {
        let mut t = Timer::new();
        t.write(TIMER_BASE + reg::CCR0, period, false);
        t.write(
            TIMER_BASE + reg::CTL,
            ctl_bits::MC_UP | ctl_bits::TAIE,
            false,
        );
        t
    }

    #[test]
    fn counts_and_wraps() {
        let mut t = up_timer(10);
        t.tick(9);
        assert_eq!(t.read(TIMER_BASE + reg::TAR, false), 9);
        assert_eq!(t.irq_lines(), 0);
        t.tick(1);
        assert_eq!(t.read(TIMER_BASE + reg::TAR, false), 0);
        assert_eq!(t.irq_lines(), 1 << TIMER_VECTOR);
        assert_eq!(t.expiries(), 1);
    }

    #[test]
    fn multiple_periods_in_one_tick() {
        let mut t = up_timer(10);
        t.tick(35);
        assert_eq!(t.expiries(), 3);
        assert_eq!(t.read(TIMER_BASE + reg::TAR, false), 5);
    }

    #[test]
    fn no_interrupt_without_ie() {
        let mut t = Timer::new();
        t.write(TIMER_BASE + reg::CCR0, 5, false);
        t.write(TIMER_BASE + reg::CTL, ctl_bits::MC_UP, false);
        t.tick(7);
        assert_eq!(t.irq_lines(), 0, "flag set but not enabled");
        assert_ne!(t.read(TIMER_BASE + reg::CTL, false) & ctl_bits::TAIFG, 0);
    }

    #[test]
    fn ack_clears_flag() {
        let mut t = up_timer(5);
        t.tick(5);
        assert_ne!(t.irq_lines(), 0);
        t.ack_irq(TIMER_VECTOR);
        assert_eq!(t.irq_lines(), 0);
    }

    #[test]
    fn taclr_strobe_clears_counter() {
        let mut t = up_timer(100);
        t.tick(42);
        t.write(
            TIMER_BASE + reg::CTL,
            ctl_bits::MC_UP | ctl_bits::TACLR,
            false,
        );
        assert_eq!(t.read(TIMER_BASE + reg::TAR, false), 0);
        assert!(t.running());
    }

    #[test]
    fn stopped_timer_does_not_count() {
        let mut t = Timer::new();
        t.write(TIMER_BASE + reg::CCR0, 5, false);
        t.tick(100);
        assert_eq!(t.read(TIMER_BASE + reg::TAR, false), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = up_timer(5);
        t.tick(7);
        t.reset();
        assert_eq!(t.read(TIMER_BASE + reg::CTL, false), 0);
        assert_eq!(t.expiries(), 0);
    }
}
