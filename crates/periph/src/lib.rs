//! # periph — MMIO peripherals for the openmsp430 simulator
//!
//! The interrupt sources and bus masters that make the paper's scenarios
//! real:
//!
//! * [`timer::Timer`] — a Timer_A-style compare timer (the syringe-pump
//!   dosage clock of §3);
//! * [`gpio::Gpio`] — ports P1–P6 with edge interrupts on P1/P2 (the
//!   button/actuation pair of Fig. 4);
//! * [`uart::Uart`] — byte serial with an RX interrupt (the network
//!   *abort* command of §3);
//! * [`dma::DmaController`] — a programmable memory-to-memory bus master
//!   (the adversary capability that \[AP1\]/LTL 4 defends against).
//!
//! Every peripheral implements [`openmsp430::periph::Peripheral`] and is
//! attached to the MCU with [`openmsp430::mcu::Mcu::add_peripheral`].
//!
//! # Examples
//!
//! ```
//! use openmsp430::{layout::MemLayout, mcu::Mcu};
//! use periph::timer::{reg, Timer, TIMER_BASE};
//! use openmsp430::periph::Peripheral;
//!
//! let mut mcu = Mcu::new(MemLayout::default());
//! mcu.add_peripheral(Box::new(Timer::new()));
//! // Firmware would program the timer through MMIO; do it directly here.
//! let t = mcu.periph_mut::<Timer>().unwrap();
//! t.write(TIMER_BASE + reg::CCR0, 1000, false);
//! # let _ = t;
//! ```

pub mod dma;
pub mod gpio;
pub mod timer;
pub mod uart;

pub use dma::DmaController;
pub use gpio::Gpio;
pub use timer::Timer;
pub use uart::Uart;
