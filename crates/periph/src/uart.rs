//! A byte-oriented UART with an RX interrupt.
//!
//! Models the "network command" path of the paper's §3: the patient's
//! *abort* command arrives asynchronously over UART and must be serviced
//! by an ISR while the syringe-pump `ER` sleeps.

use openmsp430::mem::MemRegion;
use openmsp430::periph::Peripheral;
use std::any::Any;
use std::collections::VecDeque;

/// Default MMIO base.
pub const UART_BASE: u16 = 0x0070;

/// Default RX interrupt vector.
pub const UART_RX_VECTOR: u8 = 6;

/// Register offsets.
pub mod reg {
    /// Status: bit 0 = RX data available.
    pub const STAT: u16 = 0x0;
    /// Receive buffer (reading pops the FIFO).
    pub const RXBUF: u16 = 0x2;
    /// Transmit buffer (writing sends a byte).
    pub const TXBUF: u16 = 0x4;
    /// Control: bit 0 = RX interrupt enable.
    pub const CTL: u16 = 0x6;
}

/// Status bits.
pub mod stat_bits {
    /// RX data available.
    pub const RXAVAIL: u16 = 0x1;
}

/// Control bits.
pub mod ctl_bits {
    /// RX interrupt enable.
    pub const RXIE: u16 = 0x1;
}

/// A simple UART.
///
/// # Examples
///
/// ```
/// use periph::uart::{ctl_bits, reg, Uart, UART_BASE};
/// use openmsp430::periph::Peripheral;
///
/// let mut u = Uart::new();
/// u.write(UART_BASE + reg::CTL, ctl_bits::RXIE, false);
/// u.rx_push(b'A');
/// assert_ne!(u.irq_lines(), 0);
/// assert_eq!(u.read(UART_BASE + reg::RXBUF, true), b'A' as u16);
/// assert_eq!(u.irq_lines(), 0, "line drops when the FIFO drains");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Uart {
    base: u16,
    vector: u8,
    ctl: u16,
    rx_fifo: VecDeque<u8>,
    tx_log: Vec<u8>,
}

impl Uart {
    /// Creates a UART at the default base/vector.
    pub fn new() -> Uart {
        Uart::with_base(UART_BASE, UART_RX_VECTOR)
    }

    /// Creates a UART at a custom MMIO base and RX vector.
    pub fn with_base(base: u16, vector: u8) -> Uart {
        Uart {
            base,
            vector,
            ctl: 0,
            rx_fifo: VecDeque::new(),
            tx_log: Vec::new(),
        }
    }

    /// Delivers a byte from the outside world into the RX FIFO.
    pub fn rx_push(&mut self, byte: u8) {
        self.rx_fifo.push_back(byte);
    }

    /// Delivers a whole message.
    pub fn rx_push_bytes(&mut self, bytes: &[u8]) {
        self.rx_fifo.extend(bytes.iter().copied());
    }

    /// Everything the firmware transmitted since reset.
    pub fn tx_log(&self) -> &[u8] {
        &self.tx_log
    }

    /// Bytes waiting in the RX FIFO.
    pub fn rx_pending(&self) -> usize {
        self.rx_fifo.len()
    }
}

impl Peripheral for Uart {
    fn name(&self) -> &'static str {
        "uart"
    }

    fn mmio(&self) -> MemRegion {
        MemRegion::new(self.base, self.base + 0x7)
    }

    fn read(&mut self, addr: u16, _byte: bool) -> u16 {
        match addr - self.base {
            x if x < 0x2 => u16::from(!self.rx_fifo.is_empty()),
            x if x < 0x4 => self.rx_fifo.pop_front().unwrap_or(0) as u16,
            x if x < 0x6 => 0,
            _ => self.ctl,
        }
    }

    fn write(&mut self, addr: u16, val: u16, _byte: bool) {
        match addr - self.base {
            x if x < 0x4 => {}
            x if x < 0x6 => self.tx_log.push(val as u8),
            _ => self.ctl = val,
        }
    }

    fn tick(&mut self, _cycles: u64) {}

    fn masters_dma(&self) -> bool {
        false
    }

    fn advances_time(&self) -> bool {
        false
    }

    fn irq_lines(&self) -> u16 {
        if self.ctl & ctl_bits::RXIE != 0 && !self.rx_fifo.is_empty() {
            1 << self.vector
        } else {
            0
        }
    }

    fn reset(&mut self) {
        self.ctl = 0;
        self.rx_fifo.clear();
        self.tx_log.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_fifo_order() {
        let mut u = Uart::new();
        u.rx_push_bytes(b"abc");
        assert_eq!(u.read(UART_BASE + reg::RXBUF, true), b'a' as u16);
        assert_eq!(u.read(UART_BASE + reg::RXBUF, true), b'b' as u16);
        assert_eq!(u.rx_pending(), 1);
    }

    #[test]
    fn status_tracks_fifo() {
        let mut u = Uart::new();
        assert_eq!(u.read(UART_BASE + reg::STAT, false), 0);
        u.rx_push(7);
        assert_eq!(u.read(UART_BASE + reg::STAT, false), stat_bits::RXAVAIL);
    }

    #[test]
    fn irq_level_follows_fifo_and_ie() {
        let mut u = Uart::new();
        u.rx_push(1);
        assert_eq!(u.irq_lines(), 0, "IE off");
        u.write(UART_BASE + reg::CTL, ctl_bits::RXIE, false);
        assert_eq!(u.irq_lines(), 1 << UART_RX_VECTOR);
        let _ = u.read(UART_BASE + reg::RXBUF, true);
        assert_eq!(u.irq_lines(), 0);
    }

    #[test]
    fn tx_is_logged() {
        let mut u = Uart::new();
        u.write(UART_BASE + reg::TXBUF, b'o' as u16, true);
        u.write(UART_BASE + reg::TXBUF, b'k' as u16, true);
        assert_eq!(u.tx_log(), b"ok");
    }

    #[test]
    fn empty_rx_reads_zero() {
        let mut u = Uart::new();
        assert_eq!(u.read(UART_BASE + reg::RXBUF, true), 0);
    }

    #[test]
    fn reset_drains_everything() {
        let mut u = Uart::new();
        u.rx_push(1);
        u.write(UART_BASE + reg::TXBUF, 2, true);
        u.write(UART_BASE + reg::CTL, 1, false);
        u.reset();
        assert_eq!(u.rx_pending(), 0);
        assert!(u.tx_log().is_empty());
        assert_eq!(u.irq_lines(), 0);
    }
}
