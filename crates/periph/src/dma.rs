//! A single-channel DMA controller (bus master).
//!
//! DMA matters to the security architectures because it can modify memory
//! *without* the CPU: VRASED forbids DMA during SW-Att, APEX clears
//! `EXEC` on DMA into `ER`/`OR` during execution, and ASAP's \[AP1\]
//! additionally clears `EXEC` on DMA writes to the IVT (LTL 4,
//! `DMAen ∧ DMAaddr ∈ IVT`).

use openmsp430::mem::MemRegion;
use openmsp430::periph::{DmaOp, Peripheral};
use std::any::Any;

/// Default MMIO base.
pub const DMA_BASE: u16 = 0x01D0;

/// Register offsets.
pub mod reg {
    /// Source address.
    pub const SA: u16 = 0x0;
    /// Destination address.
    pub const DA: u16 = 0x2;
    /// Transfer size in units (words or bytes).
    pub const SZ: u16 = 0x4;
    /// Control: bit 0 enable, bit 1 byte mode.
    pub const CTL: u16 = 0x6;
}

/// Control bits.
pub mod ctl_bits {
    /// Channel enable; clears itself when the transfer completes.
    pub const EN: u16 = 0x1;
    /// Byte (rather than word) units.
    pub const BYTE: u16 = 0x2;
}

/// Units transferred per MCU step while enabled.
pub const UNITS_PER_STEP: u16 = 1;

/// A programmable memory-to-memory DMA channel.
///
/// # Examples
///
/// ```
/// use periph::dma::{ctl_bits, reg, DmaController, DMA_BASE};
/// use openmsp430::periph::Peripheral;
///
/// let mut d = DmaController::new();
/// d.write(DMA_BASE + reg::SA, 0x0400, false);
/// d.write(DMA_BASE + reg::DA, 0x0500, false);
/// d.write(DMA_BASE + reg::SZ, 2, false);
/// d.write(DMA_BASE + reg::CTL, ctl_bits::EN, false);
/// let ops = d.dma_ops();
/// assert_eq!(ops.len(), 1);
/// assert_eq!(ops[0].src, 0x0400);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DmaController {
    base: u16,
    sa: u16,
    da: u16,
    sz: u16,
    ctl: u16,
    transferred: u64,
}

impl DmaController {
    /// Creates a controller at the default base.
    pub fn new() -> DmaController {
        DmaController::with_base(DMA_BASE)
    }

    /// Creates a controller at a custom MMIO base.
    pub fn with_base(base: u16) -> DmaController {
        DmaController {
            base,
            ..DmaController::default()
        }
    }

    /// True while a transfer is in progress.
    pub fn busy(&self) -> bool {
        self.ctl & ctl_bits::EN != 0 && self.sz > 0
    }

    /// Total units moved since reset.
    pub fn transferred(&self) -> u64 {
        self.transferred
    }
}

impl Peripheral for DmaController {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn mmio(&self) -> MemRegion {
        MemRegion::new(self.base, self.base + 0x7)
    }

    fn read(&mut self, addr: u16, _byte: bool) -> u16 {
        match addr - self.base {
            x if x < 0x2 => self.sa,
            x if x < 0x4 => self.da,
            x if x < 0x6 => self.sz,
            _ => self.ctl,
        }
    }

    fn write(&mut self, addr: u16, val: u16, _byte: bool) {
        match addr - self.base {
            x if x < 0x2 => self.sa = val,
            x if x < 0x4 => self.da = val,
            x if x < 0x6 => self.sz = val,
            _ => self.ctl = val,
        }
    }

    fn tick(&mut self, _cycles: u64) {}

    fn raises_irqs(&self) -> bool {
        false
    }

    fn advances_time(&self) -> bool {
        false
    }

    fn dma_ops(&mut self) -> Vec<DmaOp> {
        if !self.busy() {
            return Vec::new();
        }
        let byte = self.ctl & ctl_bits::BYTE != 0;
        let stride = if byte { 1 } else { 2 };
        let mut ops = Vec::new();
        for _ in 0..UNITS_PER_STEP.min(self.sz) {
            ops.push(DmaOp {
                src: self.sa,
                dst: self.da,
                byte,
            });
            self.sa = self.sa.wrapping_add(stride);
            self.da = self.da.wrapping_add(stride);
            self.sz -= 1;
            self.transferred += 1;
        }
        if self.sz == 0 {
            self.ctl &= !ctl_bits::EN;
        }
        ops
    }

    fn reset(&mut self) {
        self.sa = 0;
        self.da = 0;
        self.sz = 0;
        self.ctl = 0;
        self.transferred = 0;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed(sz: u16, byte: bool) -> DmaController {
        let mut d = DmaController::new();
        d.write(DMA_BASE + reg::SA, 0x0400, false);
        d.write(DMA_BASE + reg::DA, 0x0500, false);
        d.write(DMA_BASE + reg::SZ, sz, false);
        let mut ctl = ctl_bits::EN;
        if byte {
            ctl |= ctl_bits::BYTE;
        }
        d.write(DMA_BASE + reg::CTL, ctl, false);
        d
    }

    #[test]
    fn word_transfer_strides_by_two() {
        let mut d = programmed(3, false);
        let ops = d.dma_ops();
        assert_eq!(
            ops,
            vec![DmaOp {
                src: 0x0400,
                dst: 0x0500,
                byte: false
            }]
        );
        let ops = d.dma_ops();
        assert_eq!(ops[0].src, 0x0402);
        assert!(d.busy());
        let _ = d.dma_ops();
        assert!(!d.busy(), "channel disables itself at completion");
        assert_eq!(d.transferred(), 3);
    }

    #[test]
    fn byte_transfer_strides_by_one() {
        let mut d = programmed(2, true);
        let _ = d.dma_ops();
        let ops = d.dma_ops();
        assert_eq!(ops[0].src, 0x0401);
        assert!(ops[0].byte);
    }

    #[test]
    fn idle_channel_produces_no_ops() {
        let mut d = DmaController::new();
        assert!(d.dma_ops().is_empty());
        d.write(DMA_BASE + reg::SZ, 4, false);
        assert!(d.dma_ops().is_empty(), "not enabled");
    }

    #[test]
    fn registers_read_back() {
        let mut d = programmed(7, false);
        assert_eq!(d.read(DMA_BASE + reg::SA, false), 0x0400);
        assert_eq!(d.read(DMA_BASE + reg::DA, false), 0x0500);
        assert_eq!(d.read(DMA_BASE + reg::SZ, false), 7);
        assert_eq!(d.read(DMA_BASE + reg::CTL, false), ctl_bits::EN);
    }

    #[test]
    fn reset_aborts_transfer() {
        let mut d = programmed(5, false);
        let _ = d.dma_ops();
        d.reset();
        assert!(!d.busy());
        assert!(d.dma_ops().is_empty());
        assert_eq!(d.transferred(), 0);
    }
}
