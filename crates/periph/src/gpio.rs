//! GPIO ports with edge-triggered interrupts (P1/P2) and plain digital
//! I/O (P3–P6).
//!
//! The paper's running example (Fig. 4) uses exactly this pair: an ISR
//! for `PORT1` (e.g. a button) that writes to `PORT5` — the ISR is
//! trusted and linked inside `ER` under ASAP.

use openmsp430::mem::MemRegion;
use openmsp430::periph::Peripheral;
use std::any::Any;

/// Interrupt vector conventionally used for port 1.
pub const PORT1_VECTOR: u8 = 2;

/// Interrupt vector conventionally used for port 2.
pub const PORT2_VECTOR: u8 = 3;

/// Register offsets from a port's base address (byte registers).
pub mod reg {
    /// Input levels (read-only).
    pub const IN: u16 = 0;
    /// Output latch.
    pub const OUT: u16 = 1;
    /// Direction (1 = output).
    pub const DIR: u16 = 2;
    /// Interrupt flags.
    pub const IFG: u16 = 3;
    /// Interrupt edge select (1 = falling).
    pub const IES: u16 = 4;
    /// Interrupt enable.
    pub const IE: u16 = 5;
}

/// MMIO base of a numbered port (P1 = `0x0020`, each port 8 bytes apart).
pub fn port_base(port: u8) -> u16 {
    0x0020 + 0x08 * (port as u16 - 1)
}

/// An 8-pin digital I/O port.
///
/// # Examples
///
/// ```
/// use periph::gpio::{Gpio, PORT1_VECTOR};
/// use openmsp430::periph::Peripheral;
///
/// let mut p1 = Gpio::port(1, Some(PORT1_VECTOR));
/// // Enable a rising-edge interrupt on pin 0.
/// let base = periph::gpio::port_base(1);
/// p1.write(base + periph::gpio::reg::IE, 0x01, true);
/// p1.set_input(0, true); // button press
/// assert_ne!(p1.irq_lines(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Gpio {
    port: u8,
    base: u16,
    vector: Option<u8>,
    input: u8,
    out: u8,
    dir: u8,
    ifg: u8,
    ies: u8,
    ie: u8,
    /// History of values written to `OUT` (diagnostic, used by examples
    /// to observe actuation).
    out_history: Vec<u8>,
}

impl Gpio {
    /// Creates port `port` (1–6) with an optional interrupt vector.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not in `1..=6`.
    pub fn port(port: u8, vector: Option<u8>) -> Gpio {
        assert!((1..=6).contains(&port), "port out of range: {port}");
        Gpio {
            port,
            base: port_base(port),
            vector,
            input: 0,
            out: 0,
            dir: 0,
            ifg: 0,
            ies: 0,
            ie: 0,
            out_history: Vec::new(),
        }
    }

    /// Drives an external input pin, raising the interrupt flag on a
    /// matching edge (rising when `IES` bit = 0, falling when 1).
    pub fn set_input(&mut self, pin: u8, level: bool) {
        assert!(pin < 8, "pin out of range");
        let mask = 1u8 << pin;
        let old = self.input & mask != 0;
        if level == old {
            return;
        }
        self.input = if level {
            self.input | mask
        } else {
            self.input & !mask
        };
        let falling = self.ies & mask != 0;
        if level != falling {
            // Rising edge with IES=0, or falling edge with IES=1.
            self.ifg |= mask;
        }
    }

    /// Current output latch value.
    pub fn out(&self) -> u8 {
        self.out
    }

    /// All values ever written to `OUT` since reset.
    pub fn out_history(&self) -> &[u8] {
        &self.out_history
    }

    /// The port number (1–6).
    pub fn number(&self) -> u8 {
        self.port
    }
}

impl Peripheral for Gpio {
    fn name(&self) -> &'static str {
        "gpio"
    }

    fn mmio(&self) -> MemRegion {
        MemRegion::new(self.base, self.base + 0x7)
    }

    fn read(&mut self, addr: u16, _byte: bool) -> u16 {
        (match addr - self.base {
            reg::IN => self.input,
            reg::OUT => self.out,
            reg::DIR => self.dir,
            reg::IFG => self.ifg,
            reg::IES => self.ies,
            reg::IE => self.ie,
            _ => 0,
        }) as u16
    }

    fn write(&mut self, addr: u16, val: u16, _byte: bool) {
        let v = val as u8;
        match addr - self.base {
            reg::OUT => {
                self.out = v;
                self.out_history.push(v);
            }
            reg::DIR => self.dir = v,
            reg::IFG => self.ifg = v,
            reg::IES => self.ies = v,
            reg::IE => self.ie = v,
            _ => {}
        }
    }

    fn tick(&mut self, _cycles: u64) {}

    fn raises_irqs(&self) -> bool {
        self.vector.is_some()
    }

    fn masters_dma(&self) -> bool {
        false
    }

    fn advances_time(&self) -> bool {
        false
    }

    fn irq_lines(&self) -> u16 {
        match self.vector {
            Some(v) if self.ifg & self.ie != 0 => 1 << v,
            _ => 0,
        }
    }

    fn ack_irq(&mut self, vector: u8) {
        if self.vector == Some(vector) {
            // Single-source convention: clear all enabled pending flags.
            self.ifg &= !self.ie;
        }
    }

    fn reset(&mut self) {
        self.out = 0;
        self.dir = 0;
        self.ifg = 0;
        self.ies = 0;
        self.ie = 0;
        self.out_history.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p1() -> Gpio {
        Gpio::port(1, Some(PORT1_VECTOR))
    }

    #[test]
    fn rising_edge_sets_flag() {
        let mut g = p1();
        g.write(g.base + reg::IE, 0x01, true);
        g.set_input(0, true);
        assert_eq!(g.ifg, 0x01);
        assert_eq!(g.irq_lines(), 1 << PORT1_VECTOR);
    }

    #[test]
    fn falling_edge_select() {
        let mut g = p1();
        g.write(g.base + reg::IE, 0x02, true);
        g.write(g.base + reg::IES, 0x02, true);
        g.set_input(1, true); // rising: no flag
        assert_eq!(g.irq_lines(), 0);
        g.set_input(1, false); // falling: flag
        assert_ne!(g.irq_lines(), 0);
    }

    #[test]
    fn no_interrupt_when_disabled() {
        let mut g = p1();
        g.set_input(0, true);
        assert_eq!(g.ifg, 0x01, "flag latches regardless");
        assert_eq!(g.irq_lines(), 0, "but line stays low without IE");
    }

    #[test]
    fn level_unchanged_is_no_edge() {
        let mut g = p1();
        g.write(g.base + reg::IE, 0x01, true);
        g.set_input(0, true);
        g.ack_irq(PORT1_VECTOR);
        g.set_input(0, true); // no change
        assert_eq!(g.irq_lines(), 0);
    }

    #[test]
    fn out_history_records_actuation() {
        let mut g = Gpio::port(5, None);
        let base = port_base(5);
        g.write(base + reg::OUT, 0xFF, true);
        g.write(base + reg::OUT, 0x00, true);
        assert_eq!(g.out_history(), &[0xFF, 0x00]);
        assert_eq!(g.out(), 0);
    }

    #[test]
    fn ports_have_disjoint_mmio() {
        let a = Gpio::port(1, None).mmio();
        let b = Gpio::port(2, None).mmio();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn input_readable_via_mmio() {
        let mut g = p1();
        g.set_input(3, true);
        assert_eq!(g.read(g.base + reg::IN, true), 0x08);
    }

    #[test]
    fn reset_preserves_input_levels() {
        let mut g = p1();
        g.set_input(2, true);
        g.write(g.base + reg::OUT, 0xAA, true);
        g.reset();
        assert_eq!(g.out(), 0);
        assert_eq!(
            g.read(g.base + reg::IN, true),
            0x04,
            "external level persists"
        );
    }
}
