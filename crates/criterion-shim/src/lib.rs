//! # criterion (offline shim)
//!
//! A self-contained, dependency-free stand-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) benchmarking API this
//! workspace uses. The build environment has no network access to
//! crates.io, so the `[[bench]]` targets link against this shim.
//!
//! It is a real (if minimal) harness: each benchmark closure is warmed
//! up once and then timed over an adaptive number of iterations within a
//! small wall-clock budget, and the mean per-iteration time is printed.
//! Precision is deliberately modest — the goal is trend visibility and
//! keeping the bench targets compiling and runnable, not statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration wall-clock budget for one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(40);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u32 = 200;

/// Declared throughput of a benchmark, used to derive rate units.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then as many iterations as fit the
    /// budget. The mean is recorded for the caller to print.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let started = Instant::now();
        let mut iters: u32 = 0;
        while iters < MAX_ITERS && (iters == 0 || started.elapsed() < MEASURE_BUDGET) {
            std::hint::black_box(f());
            iters += 1;
        }
        self.mean = Some(started.elapsed() / iters);
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let rate = throughput
                .map(|t| describe_rate(t, mean))
                .unwrap_or_default();
            println!("bench {label:<44} {mean:>12.2?}/iter{rate}");
        }
        None => println!("bench {label:<44} (no measurement: Bencher::iter never called)"),
    }
}

fn describe_rate(t: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(f64::MIN_POSITIVE);
    match t {
        Throughput::Bytes(n) => format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0)),
        Throughput::Elements(n) => format!("  ({:.0} elem/s)", n as f64 / secs),
    }
}

/// Bundles benchmark functions into one runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
    }
}
