//! Test-runner plumbing: configuration, the deterministic RNG and the
//! per-case result type the assertion macros return.

/// Run configuration. Mirrors `proptest::test_runner::Config` for the
/// fields this workspace touches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl Config {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable with the `PROPTEST_CASES` environment
    /// variable.
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard and regenerate.
    Reject(String),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

/// Result type produced by a single test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property: generates cases from `strategy` until
/// `config.cases` of them pass, rejecting (and regenerating) cases that
/// fail a `prop_assume!`. Panics — with the rendered assertion message —
/// on the first failing case.
///
/// The strategy is a single (tuple) strategy so the closure's parameter
/// type is pinned by the `F` bound; the `proptest!` macro packs the
/// per-argument strategies into a tuple and unpacks them with a tuple
/// pattern.
pub fn run_cases<S, F>(config: &Config, name: &str, strategy: &S, mut case: F)
where
    S: crate::strategy::Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::for_test(name);
    let mut passed: u32 = 0;
    let mut attempts: u32 = 0;
    let max_attempts = config.cases.saturating_mul(16);
    while passed < config.cases && attempts < max_attempts {
        attempts += 1;
        match case(strategy.generate(&mut rng)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` case {passed} failed: {msg}");
            }
        }
    }
    assert!(
        passed == config.cases,
        "proptest `{name}`: too many rejected cases ({} passed of {} wanted)",
        passed,
        config.cases
    );
}

/// Deterministic RNG (SplitMix64). Seeded per test from the test name so
/// failures reproduce; `PROPTEST_SEED` overrides the seed globally.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The RNG for a named test: FNV-1a over the name, XORed with
    /// `PROPTEST_SEED` when set.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
