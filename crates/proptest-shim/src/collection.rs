//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::new(5);
        let s = vec(any::<u8>(), 3..10);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            lens.insert(v.len());
        }
        assert!(lens.len() > 3, "length variety expected");
    }

    #[test]
    fn exact_size_spec() {
        let mut rng = TestRng::new(6);
        let s = vec(any::<bool>(), 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }
}
