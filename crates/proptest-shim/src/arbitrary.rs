//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::new(9);
        let s = any::<bool>();
        let mut t = 0u32;
        for _ in 0..200 {
            t += s.generate(&mut rng) as u32;
        }
        assert!(t > 50 && t < 150);
    }

    #[test]
    fn integers_span_domain() {
        let mut rng = TestRng::new(10);
        let mut high_bit = false;
        for _ in 0..200 {
            high_bit |= any::<u16>().generate(&mut rng) & 0x8000 != 0;
        }
        assert!(high_bit);
    }
}
