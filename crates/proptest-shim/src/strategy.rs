//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A value generator. The real proptest `Strategy` produces shrinkable
/// value trees; this shim generates plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up. Nesting is
    /// bounded by `depth`; `_desired_size` and `_expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix the leaf back in so generated values span every depth
            // up to the bound, not just the deepest level.
            current = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies ([`prop_oneof!`](crate::prop_oneof)).
#[derive(Clone)]
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given variants. Panics when empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = TestRng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = (0u8..=3).generate(&mut rng);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn negative_ranges() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = (-512i16..=511).generate(&mut rng);
            assert!((-512..=511).contains(&v));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(3);
        let s = (1u8..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn union_is_uniformish() {
        let mut rng = TestRng::new(4);
        let s = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut counts = [0u32; 2];
        for _ in 0..1000 {
            counts[s.generate(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > 300 && counts[1] > 300);
    }
}
