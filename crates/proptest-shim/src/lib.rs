//! # proptest (offline shim)
//!
//! A self-contained, dependency-free re-implementation of the subset of
//! the [proptest](https://crates.io/crates/proptest) API this workspace
//! uses. The build environment has no network access to crates.io, so
//! the property-test suites link against this shim instead of the real
//! crate. The generation model is intentionally simple:
//!
//! * strategies are pure generators (`&mut TestRng -> Value`) — there is
//!   no shrinking; a failing case panics with the rendered assertion
//!   message so the deterministic seed reproduces it;
//! * every test function derives its RNG seed from its own name (FNV-1a),
//!   overridable with the `PROPTEST_SEED` environment variable;
//! * the case count defaults to 256 and honours `PROPTEST_CASES`.
//!
//! Supported surface: `proptest!` (item and closure forms, with
//! `#![proptest_config(..)]`), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, `prop_oneof!`, `any::<T>()`,
//! integer range strategies, strategy tuples, `Just`,
//! `proptest::collection::vec`, `prop_map`, `prop_recursive`, `boxed`.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// The core macro: runs each embedded test function over many generated
/// cases. Supports the item form (with optional `#![proptest_config]`)
/// and the closure form `proptest!(config, |(a in s, ...)| { .. })`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    // Item form. Must precede the closure form: an `expr` fragment would
    // otherwise commit on a leading doc-comment/attribute and abort.
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::__proptest_items!(
            $crate::test_runner::Config::default();
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        );
    };
    ($cfg:expr, |($($arg:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let __config: $crate::test_runner::Config = $cfg;
        $crate::test_runner::run_cases(
            &__config,
            concat!(file!(), ":", line!()),
            &($($strat,)+),
            |($($arg,)+)| {
                $body
                ::std::result::Result::Ok(())
            },
        );
    }};
}

/// Expansion helper for the item form of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(
                    &__config,
                    stringify!($name),
                    &($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Discards the current test case (it is regenerated, not failed) when
/// the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between several strategies producing the same value
/// type. Weights are not supported (the workspace never uses them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn range_and_tuple(v in 3u8..9, (a, b) in (0u16..5, any::<bool>())) {
            prop_assert!((3..9).contains(&v));
            prop_assert!(a < 5);
            let _ = b;
        }

        /// Vec strategies honour the size range.
        #[test]
        fn vec_sizes(xs in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        /// prop_oneof samples every variant eventually.
        #[test]
        fn oneof_hits_variants(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn closure_form_runs() {
        let mut seen = 0u32;
        proptest!(ProptestConfig::with_cases(16), |(x in 0u32..10)| {
            prop_assert!(x < 10);
            seen += 1;
        });
        assert_eq!(seen, 16);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        for _ in 0..200 {
            let t = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
