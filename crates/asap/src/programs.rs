//! Canned demonstration programs used by the examples, tests and
//! benchmark harness.
//!
//! All programs follow the paper's Fig. 4 structure: `startER` /
//! `exitER` stubs in `exec.start` / `exec.leave`, the provable behaviour
//! (main task + trusted ISRs) in `exec.body`, and untrusted code in
//! `text`.

use msp430_tools::link::{link, Image, LinkConfig, LinkError};
use periph::gpio::PORT1_VECTOR;
use periph::timer::TIMER_VECTOR;
use periph::uart::UART_RX_VECTOR;

/// Default `ER` base used by the demos (matches the paper's ~0xE1xx
/// addresses).
pub const EXEC_BASE: u16 = 0xE000;

/// Default untrusted-code base.
pub const TEXT_BASE: u16 = 0xF000;

/// The Fig. 4 demo: a dummy main loop plus a GPIO-triggered ISR that
/// writes `PORT5`, with the ISR linked **inside** `ER` (authorized).
pub fn fig4_authorized() -> Result<Image, LinkError> {
    let src = r#"
        ; === Fig. 4(b): software layout ===
        .section exec.start
    startER:
        call #dummy_main
        br   #exitER            ; exec.body is linked between start and leave
        .section exec.leave
    exitER:
        ret
        .section exec.body
    dummy_main:
        mov.b #0x01, &0x0025    ; P1IE: arm the button interrupt
        eint                    ; interrupts are welcome under ASAP
        mov #60, r4
    loop:
        dec r4
        jnz loop
        dint
        ret
    gpio_isr:                   ; trusted ISR, placed inside ER
        mov.b #0xFF, &0x0041    ; actuate PORT5 (P5OUT)
        reti
        .section text
    main:
        call #startER
    done:
        jmp done
    "#;
    link(
        src,
        &LinkConfig::new(EXEC_BASE, TEXT_BASE)
            .vector(PORT1_VECTOR, "gpio_isr")
            .reset("main"),
    )
}

/// The same demo with the GPIO ISR linked **outside** `ER`
/// (unauthorized): servicing it forces the PC out of `ER` and must clear
/// `EXEC` (Fig. 5(b)).
pub fn fig4_unauthorized() -> Result<Image, LinkError> {
    let src = r#"
        .section exec.start
    startER:
        call #dummy_main
        br   #exitER            ; exec.body is linked between start and leave
        .section exec.leave
    exitER:
        ret
        .section exec.body
    dummy_main:
        mov.b #0x01, &0x0025    ; P1IE: arm the button interrupt
        eint
        mov #60, r4
    loop:
        dec r4
        jnz loop
        dint
        ret
        .section text
    evil_isr:                   ; ISR left outside ER
        mov.b #0xFF, &0x0041
        reti
    main:
        call #startER
    done:
        jmp done
    "#;
    link(
        src,
        &LinkConfig::new(EXEC_BASE, TEXT_BASE)
            .vector(PORT1_VECTOR, "evil_isr")
            .reset("main"),
    )
}

/// The §3 syringe pump, interrupt-driven (requires ASAP):
///
/// 1. start injecting (P5OUT bit 0);
/// 2. program the dosage timer;
/// 3. enter a low-power mode;
/// 4. the timer ISR stops the injection and wakes the CPU.
///
/// An abort button (P1) and a UART "abort" byte are also wired to
/// trusted ISRs inside `ER`; both stop the injection immediately and
/// record the abort in `OR`.
///
/// `OR` layout (base `0x0300`): `+0` status word (1 = dosing,
/// 2 = completed, 3 = aborted), `+2` doses delivered.
pub fn syringe_pump_interrupt(dose_cycles: u16) -> Result<Image, LinkError> {
    let src = format!(
        r#"
        .section exec.start
    startER:
        call #pump_main
        br   #exitER
        .section exec.leave
    exitER:
        ret
        .section exec.body
    pump_main:
        mov.b #0x01, &0x0041    ; P5OUT: start injecting
        mov #1, &0x0300         ; OR.status = dosing
        mov.b #0x01, &0x0025    ; P1IE: arm the abort button
        mov #0x01, &0x0076      ; UART CTL: arm the network-abort RX irq
        mov #{dose_cycles}, &0x0164 ; TACCR0 = dose period
        mov #0x12, &0x0160      ; TACTL = MC_UP | TAIE
        bis #0x0018, sr         ; GIE + CPUOFF: sleep until the timer
        ; --- woken up: dosing finished or aborted ---
        mov #0, &0x0160         ; stop the timer
        ret
    timer_isr:                  ; trusted ISR: dose complete
        mov.b #0x00, &0x0041    ; stop injecting
        cmp #1, &0x0300
        jne timer_done          ; ignore spurious ticks after abort
        mov #2, &0x0300         ; OR.status = completed
        inc &0x0302             ; OR.doses += 1
    timer_done:
        bic #0x0010, 0(sp)      ; clear CPUOFF in the stacked SR: wake
        reti
    abort_isr:                  ; trusted ISR: button or UART abort
        mov.b #0x00, &0x0041    ; stop injecting immediately
        mov #3, &0x0300         ; OR.status = aborted
        mov.b &0x0072, r15      ; drain RXBUF (clears the UART line)
        bic #0x0010, 0(sp)
        reti
        .section text
    main:
        call #startER
    done:
        jmp done
    "#
    );
    link(
        &src,
        &LinkConfig::new(EXEC_BASE, TEXT_BASE)
            .vector(TIMER_VECTOR, "timer_isr")
            .vector(PORT1_VECTOR, "abort_isr")
            .vector(UART_RX_VECTOR, "abort_isr")
            .reset("main"),
    )
}

/// The §3 syringe pump, busy-wait variant (the APEX-compatible
/// workaround): the CPU actively counts down the dose period with
/// interrupts disabled. No abort is possible while dosing.
pub fn syringe_pump_busywait(dose_loops: u16) -> Result<Image, LinkError> {
    let src = format!(
        r#"
        .section exec.start
    startER:
        call #pump_main
        br   #exitER
        .section exec.leave
    exitER:
        ret
        .section exec.body
    pump_main:
        dint                    ; APEX: no interrupts during execution
        mov.b #0x01, &0x0041    ; start injecting
        mov #1, &0x0300
        mov #{dose_loops}, r4
    wait:                       ; burn cycles: the CPU cannot sleep
        dec r4
        jnz wait
        mov.b #0x00, &0x0041    ; stop injecting
        mov #2, &0x0300
        inc &0x0302
        ret
        .section text
    main:
        call #startER
    done:
        jmp done
    "#
    );
    link(&src, &LinkConfig::new(EXEC_BASE, TEXT_BASE).reset("main"))
}

/// A sensing task: read GPIO port 2 input as the "sensor", average four
/// samples into `OR`, with a UART ISR (inside `ER`) that tags the
/// reading with a request id received asynchronously.
pub fn sensor_task() -> Result<Image, LinkError> {
    let src = r#"
        .section exec.start
    startER:
        call #sense_main
        br   #exitER
        .section exec.leave
    exitER:
        ret
        .section exec.body
    sense_main:
        mov #0x01, &0x0076      ; UART CTL: arm the request-id RX irq
        eint
        clr r6                  ; accumulator
        mov #4, r7              ; sample count
    sample:
        mov.b &0x0028, r5       ; P2IN (port 2 base 0x28, IN offset 0)
        add r5, r6
        dec r7
        jnz sample
        rra r6                  ; /2
        rra r6                  ; /4
        mov r6, &0x0300         ; OR.reading
        dint
        ret
    uart_isr:                   ; trusted ISR: tag with the request id
        mov.b &0x0072, r15      ; RXBUF
        mov.b r15, &0x0302      ; OR.request_id
        reti
        .section text
    main:
        call #startER
    done:
        jmp done
    "#;
    link(
        src,
        &LinkConfig::new(EXEC_BASE, TEXT_BASE)
            .vector(UART_RX_VECTOR, "uart_isr")
            .reset("main"),
    )
}

/// The address of the untrusted idle loop (`done:`) in all demo
/// programs: `main` is a 4-byte `call` followed by the loop.
pub fn done_pc() -> u16 {
    TEXT_BASE + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_link() {
        let a = fig4_authorized().unwrap();
        let b = fig4_unauthorized().unwrap();
        let c = syringe_pump_interrupt(500).unwrap();
        let d = syringe_pump_busywait(500).unwrap();
        let e = sensor_task().unwrap();
        for img in [&a, &b, &c, &d, &e] {
            assert!(img.er.is_some());
            assert_eq!(img.er.unwrap().min, EXEC_BASE);
        }
    }

    #[test]
    fn authorized_isr_is_inside_er() {
        let img = fig4_authorized().unwrap();
        let er = img.er.unwrap();
        let isr = img.symbol("gpio_isr").unwrap();
        assert!(er.region.contains(isr));
        assert_eq!(img.ivt_entries, vec![(PORT1_VECTOR, isr)]);
    }

    #[test]
    fn unauthorized_isr_is_outside_er() {
        let img = fig4_unauthorized().unwrap();
        let er = img.er.unwrap();
        let isr = img.symbol("evil_isr").unwrap();
        assert!(!er.region.contains(isr));
    }

    #[test]
    fn pump_isrs_are_inside_er() {
        let img = syringe_pump_interrupt(100).unwrap();
        let er = img.er.unwrap();
        for sym in ["timer_isr", "abort_isr", "pump_main"] {
            assert!(
                er.region.contains(img.symbol(sym).unwrap()),
                "{sym} inside ER"
            );
        }
    }
}
