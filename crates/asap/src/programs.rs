//! Canned demonstration programs used by the examples, tests and
//! benchmark harness — now loaded from the literate program corpus
//! under `programs/` at the repository root.
//!
//! All programs follow the paper's Fig. 4 structure: `startER` /
//! `exitER` stubs in `exec.start` / `exec.leave`, the provable behaviour
//! (main task + trusted ISRs) in `exec.body`, and untrusted code in
//! `text`. The sources are `.s.md` files — markdown with fenced `asm`
//! blocks — compiled into this crate with `include_str!` and assembled
//! by [`msp430_tools::literate`].

use msp430_tools::link::{Image, LinkConfig, LinkError};
use msp430_tools::literate::LiterateSource;
use periph::gpio::{PORT1_VECTOR, PORT2_VECTOR};
use periph::timer::TIMER_VECTOR;
use periph::uart::UART_RX_VECTOR;

/// Default `ER` base used by the demos (matches the paper's ~0xE1xx
/// addresses).
pub const EXEC_BASE: u16 = 0xE000;

/// Default untrusted-code base.
pub const TEXT_BASE: u16 = 0xF000;

/// The Fig. 4 demo source: a dummy main loop plus a GPIO-triggered ISR
/// that writes `PORT5`, with the ISR linked **inside** `ER`.
pub const FIG4_AUTHORIZED: &str = include_str!("../../../programs/core/fig4-authorized.s.md");

/// The Fig. 4 demo with the ISR linked **outside** `ER` (Fig. 5(b)).
pub const FIG4_UNAUTHORIZED: &str = include_str!("../../../programs/core/fig4-unauthorized.s.md");

/// The §3 interrupt-driven syringe pump source.
pub const SYRINGE_PUMP_INTERRUPT: &str =
    include_str!("../../../programs/core/syringe-pump-interrupt.s.md");

/// The §3 busy-wait syringe pump source (the APEX-compatible
/// workaround).
pub const SYRINGE_PUMP_BUSYWAIT: &str =
    include_str!("../../../programs/core/syringe-pump-busywait.s.md");

/// The sensing-task source (UART-tagged GPIO sampling).
pub const SENSOR_TASK: &str = include_str!("../../../programs/core/sensor-task.s.md");

/// Maps the symbolic ISR vector names used in literate front matter
/// (`isr: timer timer_isr`) to MSP430 vector numbers.
pub fn isr_vector(name: &str) -> Option<u8> {
    match name {
        "port1" => Some(PORT1_VECTOR),
        "port2" => Some(PORT2_VECTOR),
        "timer" => Some(TIMER_VECTOR),
        "uart-rx" => Some(UART_RX_VECTOR),
        _ => None,
    }
}

/// The [`LinkConfig`] all demo programs start from: `ER` at
/// [`EXEC_BASE`], untrusted code at [`TEXT_BASE`]. Front matter
/// (`reset:`, `isr:`, `*-base:`) overlays the rest.
pub fn default_link_config() -> LinkConfig {
    LinkConfig::new(EXEC_BASE, TEXT_BASE)
}

/// Parses and links a literate `.s.md` source against the demo
/// defaults, with `overrides` substituted for declared `param:`s.
///
/// # Errors
///
/// Malformed literate structure, assembly or link errors — all located
/// in `.s.md` file coordinates.
pub fn build_literate(source: &str, overrides: &[(&str, &str)]) -> Result<Image, LinkError> {
    let lit = LiterateSource::parse(source).map_err(LinkError::from)?;
    lit.link(default_link_config(), &isr_vector, overrides)
        .map_err(LinkError::from)
}

/// The Fig. 4 demo: a dummy main loop plus a GPIO-triggered ISR that
/// writes `PORT5`, with the ISR linked **inside** `ER` (authorized).
pub fn fig4_authorized() -> Result<Image, LinkError> {
    build_literate(FIG4_AUTHORIZED, &[])
}

/// The same demo with the GPIO ISR linked **outside** `ER`
/// (unauthorized): servicing it forces the PC out of `ER` and must clear
/// `EXEC` (Fig. 5(b)).
pub fn fig4_unauthorized() -> Result<Image, LinkError> {
    build_literate(FIG4_UNAUTHORIZED, &[])
}

/// The §3 syringe pump, interrupt-driven (requires ASAP):
///
/// 1. start injecting (P5OUT bit 0);
/// 2. program the dosage timer;
/// 3. enter a low-power mode;
/// 4. the timer ISR stops the injection and wakes the CPU.
///
/// An abort button (P1) and a UART "abort" byte are also wired to
/// trusted ISRs inside `ER`; both stop the injection immediately and
/// record the abort in `OR`.
///
/// `OR` layout (base `0x0300`): `+0` status word (1 = dosing,
/// 2 = completed, 3 = aborted), `+2` doses delivered.
pub fn syringe_pump_interrupt(dose_cycles: u16) -> Result<Image, LinkError> {
    build_literate(
        SYRINGE_PUMP_INTERRUPT,
        &[("dose_cycles", &dose_cycles.to_string())],
    )
}

/// The §3 syringe pump, busy-wait variant (the APEX-compatible
/// workaround): the CPU actively counts down the dose period with
/// interrupts disabled. No abort is possible while dosing.
pub fn syringe_pump_busywait(dose_loops: u16) -> Result<Image, LinkError> {
    build_literate(
        SYRINGE_PUMP_BUSYWAIT,
        &[("dose_loops", &dose_loops.to_string())],
    )
}

/// A sensing task: read GPIO port 2 input as the "sensor", average four
/// samples into `OR`, with a UART ISR (inside `ER`) that tags the
/// reading with a request id received asynchronously.
pub fn sensor_task() -> Result<Image, LinkError> {
    build_literate(SENSOR_TASK, &[])
}

/// The address of the untrusted idle loop (`done:`) in all demo
/// programs: `main` is a 4-byte `call` followed by the loop.
pub fn done_pc() -> u16 {
    TEXT_BASE + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_link() {
        let a = fig4_authorized().unwrap();
        let b = fig4_unauthorized().unwrap();
        let c = syringe_pump_interrupt(500).unwrap();
        let d = syringe_pump_busywait(500).unwrap();
        let e = sensor_task().unwrap();
        for img in [&a, &b, &c, &d, &e] {
            assert!(img.er.is_some());
            assert_eq!(img.er.unwrap().min, EXEC_BASE);
        }
    }

    #[test]
    fn authorized_isr_is_inside_er() {
        let img = fig4_authorized().unwrap();
        let er = img.er.unwrap();
        let isr = img.symbol("gpio_isr").unwrap();
        assert!(er.region.contains(isr));
        assert_eq!(img.ivt_entries, vec![(PORT1_VECTOR, isr)]);
    }

    #[test]
    fn unauthorized_isr_is_outside_er() {
        let img = fig4_unauthorized().unwrap();
        let er = img.er.unwrap();
        let isr = img.symbol("evil_isr").unwrap();
        assert!(!er.region.contains(isr));
    }

    #[test]
    fn pump_isrs_are_inside_er() {
        let img = syringe_pump_interrupt(100).unwrap();
        let er = img.er.unwrap();
        for sym in ["timer_isr", "abort_isr", "pump_main"] {
            assert!(
                er.region.contains(img.symbol(sym).unwrap()),
                "{sym} inside ER"
            );
        }
    }

    #[test]
    fn vector_names_cover_the_periph_set() {
        assert_eq!(isr_vector("port1"), Some(PORT1_VECTOR));
        assert_eq!(isr_vector("port2"), Some(PORT2_VECTOR));
        assert_eq!(isr_vector("timer"), Some(TIMER_VECTOR));
        assert_eq!(isr_vector("uart-rx"), Some(UART_RX_VECTOR));
        assert_eq!(isr_vector("bogus"), None);
    }
}
