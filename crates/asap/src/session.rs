//! The PoX session state machine: `Issued → Evidence → Verified/Rejected`.
//!
//! A [`PoxSession`] is created by [`AsapVerifier::begin`] and carries the
//! challenge and the exact `ER`/`OR` geometry the verifier derived from
//! the linked image. The typestate makes the two classic protocol
//! mistakes unrepresentable:
//!
//! * **replay** — verifying consumes the session, and a response can
//!   only be judged against the challenge of the session it was absorbed
//!   into; there is no way to re-verify or to pair an old response with
//!   a fresh challenge;
//! * **mis-binding** — callers never hand regions, expected `ER` bytes
//!   or ISR maps to the verification call; everything the check needs
//!   travels inside the session and the verifier's
//!   [`VerifierSpec`](crate::verifier::VerifierSpec).
//!
//! Both messages cross transports via their canonical wire encodings
//! ([`PoxSession::request_bytes`] / [`PoxSession::evidence_bytes`]).

use crate::error::AsapError;
use crate::verifier::AsapVerifier;
use apex_pox::protocol::{PoxRequest, PoxResponse};

/// Typestate: the challenge is issued; no evidence absorbed yet.
#[derive(Debug)]
pub struct Issued(());

/// Typestate: prover evidence absorbed; ready to conclude. Owns the
/// response, so an evidence-less `Evidence` stage is unrepresentable.
#[derive(Debug)]
pub struct Evidence(PoxResponse);

/// One challenge/evidence/verdict exchange. See the module docs.
/// Deliberately not `Clone`: a duplicated session could absorb and
/// conclude the same evidence twice, which is the replay shape the
/// consume-on-verify typestate exists to rule out.
#[derive(Debug)]
pub struct PoxSession<Stage> {
    request: PoxRequest,
    stage: Stage,
}

impl PoxSession<Issued> {
    pub(crate) fn issue(request: PoxRequest) -> PoxSession<Issued> {
        PoxSession {
            request,
            stage: Issued(()),
        }
    }

    /// The request to deliver to the prover.
    pub fn request(&self) -> &PoxRequest {
        &self.request
    }

    /// The request in wire encoding, for byte transports.
    pub fn request_bytes(&self) -> Vec<u8> {
        self.request.to_bytes()
    }

    /// Absorbs the prover's response.
    pub fn evidence(self, response: PoxResponse) -> PoxSession<Evidence> {
        PoxSession {
            request: self.request,
            stage: Evidence(response),
        }
    }

    /// Absorbs a wire-encoded response.
    ///
    /// # Errors
    ///
    /// [`AsapError::Wire`] when the bytes do not decode; the session is
    /// spent either way (a garbled transcript is not retryable evidence).
    pub fn evidence_bytes(self, bytes: &[u8]) -> Result<PoxSession<Evidence>, AsapError> {
        let response = PoxResponse::from_bytes(bytes)?;
        Ok(self.evidence(response))
    }
}

impl PoxSession<Evidence> {
    /// The absorbed response.
    pub fn response(&self) -> &PoxResponse {
        &self.stage.0
    }

    /// Concludes the session against the verifier that issued it,
    /// consuming the session.
    pub fn conclude(self, verifier: &AsapVerifier) -> SessionOutcome {
        let Evidence(response) = self.stage;
        match verifier.check(&self.request, &response) {
            Ok(()) => SessionOutcome::Verified(Attested {
                output: response.output,
                ivt: response.ivt,
            }),
            Err(reason) => SessionOutcome::Rejected { reason, response },
        }
    }
}

/// What a concluded session yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The proof of execution is valid.
    Verified(Attested),
    /// The proof was rejected; the offending response is retained for
    /// forensics.
    Rejected {
        /// The first failed check.
        reason: AsapError,
        /// The response as received.
        response: PoxResponse,
    },
}

impl SessionOutcome {
    /// True when the proof verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, SessionOutcome::Verified(_))
    }

    /// The rejection reason, if any.
    pub fn err(&self) -> Option<&AsapError> {
        match self {
            SessionOutcome::Verified(_) => None,
            SessionOutcome::Rejected { reason, .. } => Some(reason),
        }
    }

    /// Converts to a `Result`, dropping the forensic response.
    ///
    /// # Errors
    ///
    /// The rejection reason when the proof did not verify.
    pub fn into_result(self) -> Result<Attested, AsapError> {
        match self {
            SessionOutcome::Verified(a) => Ok(a),
            SessionOutcome::Rejected { reason, .. } => Err(reason),
        }
    }
}

/// The facts a verified proof of execution establishes: the expected
/// code ran to completion untampered and deposited these outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attested {
    /// The authenticated contents of `OR`.
    pub output: Vec<u8>,
    /// The authenticated IVT image (ASAP mode only).
    pub ivt: Option<Vec<u8>>,
}
