//! The verifier side of the PoX protocol: specs derived from the linked
//! image, and mode-aware verification of prover evidence.
//!
//! The centrepiece is [`VerifierSpec::from_image`]: everything the
//! verifier must agree with the prover about — the `ER` geometry and
//! bytes, the trusted-ISR entry points, the `OR` and IVT regions — is
//! derived from the *same linked [`Image`]* that is flashed onto the
//! device, so the two sides can never disagree about what "the expected
//! code" is. Hand-maintained ISR maps and copy-pasted `er_bytes()` are
//! gone, and with them the mis-binding bugs ASAP's security argument
//! (§4.2) assumes away.
//!
//! Under ASAP the attestation measurement additionally covers the IVT,
//! and the verifier checks that **every IVT entry pointing into `ER`
//! lands on the entry point of an expected, trusted ISR**. Any execution
//! of an unauthorized ISR would have required the PC to leave `ER`
//! (clearing `EXEC` per LTL 1), and any IVT re-routing after execution
//! started would have tripped \[AP1\] — so a valid response proves the
//! asynchronous behaviour was exactly the intended one.

use crate::device::PoxMode;
use crate::error::AsapError;
use crate::session::{Issued, PoxSession};
use apex_pox::protocol::{pox_items, PoxRequest, PoxResponse};
use msp430_tools::link::Image;
use openmsp430::cpu::IVT_VECTORS;
use openmsp430::layout::MemLayout;
use openmsp430::mem::MemRegion;
use pox_crypto::hmac::ct_eq;
use std::collections::BTreeMap;
use vrased::protocol::Challenge;
use vrased::swatt::attest;

/// What the verifier expects of a provable deployment — derived from
/// the linked image rather than hand-assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifierSpec {
    /// The PoX architecture the device implements.
    pub mode: PoxMode,
    /// The executable region to request.
    pub er: MemRegion,
    /// The output region to request.
    pub or: MemRegion,
    /// The IVT region covered by ASAP attestations.
    pub ivt_region: MemRegion,
    /// Expected bytes of the linked `ER` (main task + trusted ISRs).
    pub expected_er: Vec<u8>,
    /// Trusted-ISR entry points: vector → address inside `ER`.
    pub trusted_isrs: BTreeMap<u8, u16>,
}

impl VerifierSpec {
    /// Derives a spec from a linked image, with the default
    /// [`MemLayout`] supplying the `OR` and IVT regions. Mode defaults
    /// to [`PoxMode::Asap`]; override with [`VerifierSpec::mode`].
    ///
    /// # Errors
    ///
    /// [`AsapError::NoEr`] when the image has no `exec.*` sections.
    ///
    /// # Examples
    ///
    /// ```
    /// use asap::programs;
    /// use asap::VerifierSpec;
    ///
    /// let image = programs::fig4_authorized()?;
    /// let spec = VerifierSpec::from_image(&image)?;
    /// // The trusted GPIO ISR was picked up from the image's IVT.
    /// assert_eq!(spec.trusted_isrs.len(), 1);
    /// assert_eq!(spec.expected_er.len() as u32, spec.er.len());
    /// # Ok::<(), asap::AsapError>(())
    /// ```
    pub fn from_image(image: &Image) -> Result<VerifierSpec, AsapError> {
        VerifierSpec::from_image_with_layout(image, MemLayout::default())
    }

    /// [`VerifierSpec::from_image`] with a custom layout — use when the
    /// device is built with [`DeviceBuilder::layout`]
    /// (`crate::device::DeviceBuilder::layout`).
    ///
    /// # Errors
    ///
    /// [`AsapError::NoEr`] when the image has no `exec.*` sections.
    pub fn from_image_with_layout(
        image: &Image,
        layout: MemLayout,
    ) -> Result<VerifierSpec, AsapError> {
        let er = image.er.ok_or(AsapError::NoEr)?;

        // The ER bytes exactly as Image::load_into will lay them out:
        // chunks copied over zero-initialised memory (section alignment
        // gaps stay zero).
        let mut expected_er = vec![0u8; er.region.len() as usize];
        for (base, bytes) in &image.chunks {
            for (i, b) in bytes.iter().enumerate() {
                let addr = base.wrapping_add(i as u16);
                if er.region.contains(addr) {
                    expected_er[(addr - er.region.start()) as usize] = *b;
                }
            }
        }

        let trusted_isrs = image
            .ivt_entries
            .iter()
            .copied()
            .filter(|(_, target)| er.region.contains(*target))
            .collect();

        Ok(VerifierSpec {
            mode: PoxMode::Asap,
            er: er.region,
            or: layout.or,
            ivt_region: layout.ivt,
            expected_er,
            trusted_isrs,
        })
    }

    /// Selects the PoX architecture the deployment runs.
    pub fn mode(mut self, mode: PoxMode) -> VerifierSpec {
        self.mode = mode;
        self
    }
}

/// The immutable half of a verifier: the shared device key and the
/// image-derived spec. Kept behind an `Arc` so cloning a verifier (as
/// fleet registries do to run MAC checks outside their locks) is a
/// refcount bump, not a copy of the expected `ER` bytes. The spec is
/// its own `Arc` so a fleet deploying one image to a million devices
/// stores the expected `ER` bytes once, not once per device
/// ([`AsapVerifier::new_shared`]).
#[derive(Debug)]
struct VerifierCore {
    key: Vec<u8>,
    spec: std::sync::Arc<VerifierSpec>,
}

/// The verifier: holds the shared device key, a [`VerifierSpec`], and
/// the monotone challenge counter. Issue sessions with
/// [`AsapVerifier::begin`].
#[derive(Debug, Clone)]
pub struct AsapVerifier {
    core: std::sync::Arc<VerifierCore>,
    counter: u64,
}

impl AsapVerifier {
    /// Creates a verifier for a deployment described by `spec`.
    pub fn new(key: &[u8], spec: VerifierSpec) -> AsapVerifier {
        AsapVerifier::new_shared(key, std::sync::Arc::new(spec))
    }

    /// [`AsapVerifier::new`] over an already-shared spec. A fleet
    /// enrolling many devices of the same image passes one
    /// `Arc<VerifierSpec>` to every call, so the expected `ER` bytes
    /// exist once in memory no matter how many devices share them.
    pub fn new_shared(key: &[u8], spec: std::sync::Arc<VerifierSpec>) -> AsapVerifier {
        AsapVerifier {
            core: std::sync::Arc::new(VerifierCore {
                key: key.to_vec(),
                spec,
            }),
            counter: 0,
        }
    }

    /// A fresh verifier for the same deployment under a new device key:
    /// the spec allocation is shared with `self`, the challenge counter
    /// starts over (new key, new MAC domain — old challenges cannot
    /// collide with the new sequence).
    pub fn rekeyed(&self, key: &[u8]) -> AsapVerifier {
        AsapVerifier::new_shared(key, std::sync::Arc::clone(&self.core.spec))
    }

    /// The spec in force.
    pub fn spec(&self) -> &VerifierSpec {
        &self.core.spec
    }

    /// Number of sessions this verifier has issued so far — the current
    /// value of its challenge counter.
    pub fn sessions_issued(&self) -> u64 {
        self.counter
    }

    /// Opens a fresh PoX session: bumps the challenge counter and binds
    /// the spec's `ER`/`OR` geometry into the request.
    ///
    /// The challenge counter is **per-verifier state**, not global: two
    /// `AsapVerifier`s constructed alike will issue the same challenge
    /// sequence, so a deployment must hold exactly one verifier per
    /// device key (as [`asap_fleet`'s registry] does). Within one
    /// verifier the counter is monotone, which means:
    ///
    /// * any number of sessions may be in flight concurrently — each
    ///   `begin` call gets a distinct challenge, and evidence can only
    ///   conclude the session whose challenge it was computed under;
    /// * evidence bound to a superseded (stale) challenge fails the
    ///   fresh session's MAC check and is rejected with
    ///   [`AsapError::BadMac`](crate::AsapError::BadMac).
    ///
    /// [`asap_fleet`'s registry]: https://docs.rs/asap-fleet
    pub fn begin(&mut self) -> PoxSession<Issued> {
        self.counter += 1;
        PoxSession::issue(PoxRequest {
            chal: Challenge::from_counter(self.counter),
            er: self.core.spec.er,
            or: self.core.spec.or,
        })
    }

    /// Parses an IVT byte image into vector → target pairs.
    pub fn parse_ivt(bytes: &[u8]) -> Vec<(u8, u16)> {
        bytes
            .chunks(2)
            .take(IVT_VECTORS as usize)
            .enumerate()
            .map(|(i, c)| (i as u8, u16::from_le_bytes([c[0], *c.get(1).unwrap_or(&0)])))
            .collect()
    }

    /// Renders vector → target pairs back into an IVT byte image of
    /// `IVT_VECTORS` entries (the inverse of [`AsapVerifier::parse_ivt`]
    /// for in-range vectors).
    pub fn render_ivt(entries: &[(u8, u16)]) -> Vec<u8> {
        let mut bytes = vec![0u8; 2 * IVT_VECTORS as usize];
        for (vector, target) in entries {
            if *vector < IVT_VECTORS {
                let at = 2 * *vector as usize;
                bytes[at..at + 2].copy_from_slice(&target.to_le_bytes());
            }
        }
        bytes
    }

    /// Judges a response against a request this verifier issued.
    ///
    /// Checks, in order: `EXEC = 1`; the IVT report matches the mode
    /// (present under ASAP, absent under APEX); every IVT entry pointing
    /// into `ER` matches a trusted-ISR entry point; and the MAC binds
    /// `EXEC ‖ ER(expected) ‖ OR(claimed) (‖ IVT(reported))` under the
    /// session's challenge.
    pub(crate) fn check(&self, req: &PoxRequest, resp: &PoxResponse) -> Result<(), AsapError> {
        let spec = &self.core.spec;
        if !resp.exec {
            return Err(AsapError::NotExecuted);
        }
        let ivt = match (spec.mode, resp.ivt.as_ref()) {
            (PoxMode::Asap, Some(bytes)) => {
                for (vector, target) in Self::parse_ivt(bytes) {
                    if req.er.contains(target) && spec.trusted_isrs.get(&vector) != Some(&target) {
                        return Err(AsapError::UnexpectedIsrEntry { vector, target });
                    }
                }
                Some((spec.ivt_region, bytes.as_slice()))
            }
            (PoxMode::Asap, None) => return Err(AsapError::MissingIvt),
            (PoxMode::Apex, Some(_)) => return Err(AsapError::UnexpectedIvt),
            (PoxMode::Apex, None) => None,
        };

        let items = pox_items(true, req.er, &spec.expected_er, req.or, &resp.output, ivt);
        let want = attest(&self.core.key, req.chal.as_bytes(), &items);
        if !ct_eq(&want, &resp.mac) {
            return Err(AsapError::BadMac);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOutcome;

    const KEY: &[u8] = b"k";

    fn spec(mode: PoxMode, trusted: &[(u8, u16)]) -> VerifierSpec {
        VerifierSpec {
            mode,
            er: MemRegion::new(0xE000, 0xE0FF),
            or: MemRegion::new(0x0300, 0x033F),
            ivt_region: MemRegion::new(0xFFE0, 0xFFFF),
            expected_er: vec![0xAA; 256],
            trusted_isrs: trusted.iter().copied().collect(),
        }
    }

    fn ivt_with(vector: u8, target: u16) -> Vec<u8> {
        AsapVerifier::render_ivt(&[(vector, target)])
    }

    /// A prover that measured honestly: contents match the spec.
    fn honest(
        vrf: &AsapVerifier,
        req: &PoxRequest,
        ivt: Option<Vec<u8>>,
        out: &[u8],
    ) -> PoxResponse {
        let items = pox_items(
            true,
            req.er,
            &vrf.spec().expected_er,
            req.or,
            out,
            ivt.as_ref().map(|b| (vrf.spec().ivt_region, b.as_slice())),
        );
        PoxResponse {
            exec: true,
            output: out.to_vec(),
            ivt,
            mac: attest(KEY, req.chal.as_bytes(), &items),
        }
    }

    fn conclude(vrf: &mut AsapVerifier, ivt: Option<Vec<u8>>, out: &[u8]) -> SessionOutcome {
        let session = vrf.begin();
        let resp = honest(vrf, session.request(), ivt, out);
        session.evidence(resp).conclude(vrf)
    }

    #[test]
    fn honest_asap_session_verifies() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[(2, 0xE020)]));
        let outcome = conclude(&mut vrf, Some(ivt_with(2, 0xE020)), b"out");
        let attested = outcome.into_result().expect("verifies");
        assert_eq!(attested.output, b"out");
        assert!(attested.ivt.is_some());
    }

    #[test]
    fn honest_apex_session_verifies() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Apex, &[]));
        assert!(conclude(&mut vrf, None, b"out").is_verified());
    }

    #[test]
    fn ivt_entry_into_er_must_match_trusted_isr() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[(2, 0xE020)]));
        // Vector 2 re-routed to a different in-ER address: a gadget jump.
        let outcome = conclude(&mut vrf, Some(ivt_with(2, 0xE050)), b"out");
        assert_eq!(
            outcome.err(),
            Some(&AsapError::UnexpectedIsrEntry {
                vector: 2,
                target: 0xE050
            })
        );
    }

    #[test]
    fn unknown_vector_into_er_rejected() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let outcome = conclude(&mut vrf, Some(ivt_with(9, 0xE004)), b"out");
        assert!(matches!(
            outcome.err(),
            Some(&AsapError::UnexpectedIsrEntry { vector: 9, .. })
        ));
    }

    #[test]
    fn vectors_outside_er_are_unconstrained() {
        // Untrusted ISRs may exist — they simply clear EXEC if they run.
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        assert!(conclude(&mut vrf, Some(ivt_with(9, 0xF800)), b"out").is_verified());
    }

    #[test]
    fn missing_ivt_rejected_under_asap() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let outcome = conclude(&mut vrf, None, b"out");
        assert_eq!(outcome.err(), Some(&AsapError::MissingIvt));
    }

    #[test]
    fn unexpected_ivt_rejected_under_apex() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Apex, &[]));
        let outcome = conclude(&mut vrf, Some(vec![0u8; 32]), b"out");
        assert_eq!(outcome.err(), Some(&AsapError::UnexpectedIvt));
    }

    #[test]
    fn tampered_ivt_report_fails_mac() {
        // The prover cannot report a clean IVT if the measured one was
        // dirty: the MAC binds the measured bytes.
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let session = vrf.begin();
        let mut resp = honest(&vrf, session.request(), Some(ivt_with(9, 0xF800)), b"out");
        resp.ivt = Some(vec![0u8; 32]); // forged report
        let outcome = session.evidence(resp).conclude(&vrf);
        assert_eq!(outcome.err(), Some(&AsapError::BadMac));
    }

    #[test]
    fn exec_zero_rejected() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let session = vrf.begin();
        let mut resp = honest(&vrf, session.request(), Some(vec![0u8; 32]), b"out");
        resp.exec = false;
        let outcome = session.evidence(resp).conclude(&vrf);
        assert_eq!(outcome.err(), Some(&AsapError::NotExecuted));
    }

    #[test]
    fn concurrent_sessions_get_distinct_challenges() {
        // The counter is per-verifier: sessions opened before earlier
        // ones conclude still receive fresh, pairwise-distinct
        // challenges, and each session's evidence only concludes the
        // session it was computed for.
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        assert_eq!(vrf.sessions_issued(), 0);
        let first = vrf.begin();
        let second = vrf.begin();
        let third = vrf.begin();
        assert_eq!(vrf.sessions_issued(), 3);
        assert_ne!(first.request().chal, second.request().chal);
        assert_ne!(second.request().chal, third.request().chal);
        assert_ne!(first.request().chal, third.request().chal);

        // Evidence for session two concludes session two even with one
        // and three still open…
        let resp2 = honest(&vrf, second.request(), Some(vec![0u8; 32]), b"two");
        assert!(second.evidence(resp2.clone()).conclude(&vrf).is_verified());
        // …and cannot conclude session three.
        let outcome = third.evidence(resp2).conclude(&vrf);
        assert_eq!(outcome.err(), Some(&AsapError::BadMac));
    }

    #[test]
    fn stale_evidence_fails_fresh_session() {
        // A response computed for session N cannot conclude session N+1:
        // the challenge differs, so the MAC check fails.
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let first = vrf.begin();
        let stale = honest(&vrf, first.request(), Some(vec![0u8; 32]), b"out");
        let _abandoned = first; // session N is never concluded
        let second = vrf.begin();
        let outcome = second.evidence(stale).conclude(&vrf);
        assert_eq!(outcome.err(), Some(&AsapError::BadMac));
    }

    #[test]
    fn sessions_cross_a_byte_transport() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let session = vrf.begin();
        // Round-trip the request through its wire form, as a transport
        // would, and check the prover sees the identical request.
        let req = PoxRequest::from_bytes(&session.request_bytes()).unwrap();
        assert_eq!(&req, session.request());
        let resp = honest(&vrf, &req, Some(vec![0u8; 32]), b"out");
        let session = session.evidence_bytes(&resp.to_bytes()).unwrap();
        assert!(session.conclude(&vrf).is_verified());
    }

    #[test]
    fn garbled_evidence_bytes_are_a_wire_error() {
        let mut vrf = AsapVerifier::new(KEY, spec(PoxMode::Asap, &[]));
        let session = vrf.begin();
        assert!(matches!(
            session.evidence_bytes(b"not a response"),
            Err(AsapError::Wire(_))
        ));
    }

    #[test]
    fn parse_ivt_layout_and_render_inverse() {
        let bytes = ivt_with(15, 0xE000);
        let entries = AsapVerifier::parse_ivt(&bytes);
        assert_eq!(entries.len(), 16);
        assert_eq!(entries[15], (15, 0xE000));
        assert_eq!(entries[0], (0, 0x0000));
        assert_eq!(AsapVerifier::render_ivt(&entries), bytes);
    }

    #[test]
    fn spec_from_image_matches_device_er() {
        use crate::device::Device;
        use crate::programs;

        let image = programs::fig4_authorized().unwrap();
        let spec = VerifierSpec::from_image(&image).unwrap();
        let device = Device::builder(&image).key(KEY).build().unwrap();
        assert_eq!(
            spec.expected_er,
            device.er_bytes(),
            "image-derived ER = flashed ER"
        );
        assert_eq!(spec.er, device.er().region);
        let isr = image.symbol("gpio_isr").unwrap();
        assert_eq!(
            spec.trusted_isrs,
            [(periph::gpio::PORT1_VECTOR, isr)].into()
        );
    }
}
