//! The ASAP verifier: APEX's PoX verification plus the IVT/ISR checks of
//! the paper's security argument (§4.2).
//!
//! Under ASAP the attestation measurement additionally covers the IVT,
//! and the verifier checks that **every IVT entry pointing into `ER`
//! lands on the entry point of an expected, trusted ISR**. Any execution
//! of an unauthorized ISR would have required the PC to leave `ER`
//! (clearing `EXEC` per LTL 1), and any IVT re-routing after execution
//! started would have tripped \[AP1\] — so a valid response proves the
//! asynchronous behaviour was exactly the intended one.

use apex_pox::protocol::{pox_items, PoxError, PoxRequest, PoxResponse};
use openmsp430::cpu::{IVT_BASE, IVT_VECTORS};
use openmsp430::mem::MemRegion;
use pox_crypto::hmac::ct_eq;
use vrased::protocol::Challenge;
use vrased::swatt::attest;
use std::collections::BTreeMap;

/// The ASAP verifier.
#[derive(Debug, Clone)]
pub struct AsapVerifier {
    key: Vec<u8>,
    counter: u64,
    /// Expected bytes of the linked `ER` (main task + trusted ISRs).
    pub expected_er: Vec<u8>,
    /// Expected trusted-ISR entry points: vector → address inside `ER`.
    pub expected_isrs: BTreeMap<u8, u16>,
    /// The IVT region (fixed on OpenMSP430: the last 32 bytes).
    pub ivt_region: MemRegion,
}

impl AsapVerifier {
    /// Creates a verifier for the given `ER` binary and trusted ISR map.
    pub fn new(
        key: &[u8],
        expected_er: Vec<u8>,
        expected_isrs: BTreeMap<u8, u16>,
    ) -> AsapVerifier {
        AsapVerifier {
            key: key.to_vec(),
            counter: 0,
            expected_er,
            expected_isrs,
            ivt_region: MemRegion::new(IVT_BASE, 0xFFFF),
        }
    }

    /// Issues a fresh PoX request.
    pub fn request(&mut self, er: MemRegion, or: MemRegion) -> PoxRequest {
        self.counter += 1;
        PoxRequest { chal: Challenge::from_counter(self.counter), er, or }
    }

    /// Parses an IVT byte image into vector → target pairs.
    pub fn parse_ivt(bytes: &[u8]) -> Vec<(u8, u16)> {
        bytes
            .chunks(2)
            .take(IVT_VECTORS as usize)
            .enumerate()
            .map(|(i, c)| (i as u8, u16::from_le_bytes([c[0], *c.get(1).unwrap_or(&0)])))
            .collect()
    }

    /// Verifies an ASAP PoX response.
    ///
    /// Checks, in order: `EXEC = 1`; the IVT report is present; every
    /// IVT entry pointing into `ER` matches an expected trusted-ISR
    /// entry point; and the MAC binds
    /// `EXEC ‖ ER(expected) ‖ OR(claimed) ‖ IVT(reported)` under the
    /// fresh challenge.
    ///
    /// # Errors
    ///
    /// The corresponding [`PoxError`] for the first failed check.
    pub fn verify(&self, req: &PoxRequest, resp: &PoxResponse) -> Result<(), PoxError> {
        if !resp.exec {
            return Err(PoxError::NotExecuted);
        }
        let ivt_bytes = resp.ivt.as_ref().ok_or(PoxError::MissingIvt)?;

        for (vector, target) in Self::parse_ivt(ivt_bytes) {
            if req.er.contains(target) {
                match self.expected_isrs.get(&vector) {
                    Some(&want) if want == target => {}
                    _ => return Err(PoxError::UnexpectedIsrEntry { vector, target }),
                }
            }
        }

        let items = pox_items(
            true,
            req.er,
            &self.expected_er,
            req.or,
            &resp.output,
            Some((self.ivt_region, ivt_bytes)),
        );
        let want = attest(&self.key, &req.chal.0, &items);
        if !ct_eq(&want, &resp.mac) {
            return Err(PoxError::BadMac);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn er() -> MemRegion {
        MemRegion::new(0xE000, 0xE0FF)
    }

    fn or() -> MemRegion {
        MemRegion::new(0x0300, 0x033F)
    }

    fn ivt_with(vector: u8, target: u16) -> Vec<u8> {
        let mut bytes = vec![0u8; 32];
        bytes[2 * vector as usize..2 * vector as usize + 2]
            .copy_from_slice(&target.to_le_bytes());
        bytes
    }

    fn honest(
        vrf: &AsapVerifier,
        key: &[u8],
        req: &PoxRequest,
        ivt: Vec<u8>,
        out: &[u8],
    ) -> PoxResponse {
        let items =
            pox_items(true, req.er, &vrf.expected_er, req.or, out, Some((vrf.ivt_region, &ivt)));
        PoxResponse {
            exec: true,
            output: out.to_vec(),
            ivt: Some(ivt),
            mac: attest(key, &req.chal.0, &items),
        }
    }

    #[test]
    fn honest_asap_response_verifies() {
        let key = b"k";
        let isrs = BTreeMap::from([(2u8, 0xE020u16)]);
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], isrs);
        let req = vrf.request(er(), or());
        let resp = honest(&vrf, key, &req, ivt_with(2, 0xE020), b"out");
        assert!(vrf.verify(&req, &resp).is_ok());
    }

    #[test]
    fn ivt_entry_into_er_must_match_expected_isr() {
        let key = b"k";
        let isrs = BTreeMap::from([(2u8, 0xE020u16)]);
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], isrs);
        let req = vrf.request(er(), or());
        // Vector 2 re-routed to a different in-ER address: a gadget jump.
        let resp = honest(&vrf, key, &req, ivt_with(2, 0xE050), b"out");
        assert_eq!(
            vrf.verify(&req, &resp),
            Err(PoxError::UnexpectedIsrEntry { vector: 2, target: 0xE050 })
        );
    }

    #[test]
    fn unknown_vector_into_er_rejected() {
        let key = b"k";
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], BTreeMap::new());
        let req = vrf.request(er(), or());
        let resp = honest(&vrf, key, &req, ivt_with(9, 0xE004), b"out");
        assert!(matches!(
            vrf.verify(&req, &resp),
            Err(PoxError::UnexpectedIsrEntry { vector: 9, .. })
        ));
    }

    #[test]
    fn vectors_outside_er_are_unconstrained() {
        // Untrusted ISRs may exist — they simply clear EXEC if they run.
        let key = b"k";
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], BTreeMap::new());
        let req = vrf.request(er(), or());
        let resp = honest(&vrf, key, &req, ivt_with(9, 0xF800), b"out");
        assert!(vrf.verify(&req, &resp).is_ok());
    }

    #[test]
    fn missing_ivt_rejected() {
        let key = b"k";
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], BTreeMap::new());
        let req = vrf.request(er(), or());
        let mut resp = honest(&vrf, key, &req, vec![0u8; 32], b"out");
        resp.ivt = None;
        assert_eq!(vrf.verify(&req, &resp), Err(PoxError::MissingIvt));
    }

    #[test]
    fn tampered_ivt_report_fails_mac() {
        // The prover cannot report a clean IVT if the measured one was
        // dirty: the MAC binds the measured bytes.
        let key = b"k";
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], BTreeMap::new());
        let req = vrf.request(er(), or());
        let measured = ivt_with(9, 0xF800);
        let items = pox_items(
            true,
            req.er,
            &vrf.expected_er,
            req.or,
            b"out",
            Some((vrf.ivt_region, &measured)),
        );
        let resp = PoxResponse {
            exec: true,
            output: b"out".to_vec(),
            ivt: Some(vec![0u8; 32]), // forged report
            mac: attest(key, &req.chal.0, &items),
        };
        assert_eq!(vrf.verify(&req, &resp), Err(PoxError::BadMac));
    }

    #[test]
    fn exec_zero_rejected() {
        let key = b"k";
        let mut vrf = AsapVerifier::new(key, vec![0xAA; 256], BTreeMap::new());
        let req = vrf.request(er(), or());
        let mut resp = honest(&vrf, key, &req, vec![0u8; 32], b"out");
        resp.exec = false;
        assert_eq!(vrf.verify(&req, &resp), Err(PoxError::NotExecuted));
    }

    #[test]
    fn parse_ivt_layout() {
        let bytes = ivt_with(15, 0xE000);
        let entries = AsapVerifier::parse_ivt(&bytes);
        assert_eq!(entries.len(), 16);
        assert_eq!(entries[15], (15, 0xE000));
        assert_eq!(entries[0], (0, 0x0000));
    }
}
