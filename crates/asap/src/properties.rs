//! The full 21-LTL-property verification suite.
//!
//! The paper reports: *"ASAP verification takes ≈150s for a total of 21
//! LTL properties"* (§5, Verification Cost) — the combined VRASED +
//! APEX + ASAP property set re-checked over the modified hardware.
//! This module reproduces that suite: 21 named properties distributed
//! over five monitor models, each checked with the `ltl-mc`
//! explicit-state model checker.

use crate::monitor::{AsapMonitor, IvtGuard};
use apex_pox::monitor::ApexMonitor;
use ltl_mc::fsm::{kripke_of, kripke_of_constrained};
use ltl_mc::mc::{check_suite, CheckStats};
use std::time::Duration;
use vrased::hw::{KeyGuard, SwAttAtomicity};

/// One row of the verification report.
#[derive(Debug, Clone)]
pub struct PropertyRow {
    /// Property name (P01–P21 with its formula).
    pub name: String,
    /// Which monitor model it was checked against.
    pub model: &'static str,
    /// Whether it holds.
    pub holds: bool,
    /// Model-checking statistics.
    pub stats: CheckStats,
    /// Time spent on this property.
    pub elapsed: Duration,
}

/// The whole suite's outcome.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// Per-property rows (21 of them).
    pub rows: Vec<PropertyRow>,
}

impl SuiteReport {
    /// True when every property holds.
    pub fn all_hold(&self) -> bool {
        self.rows.iter().all(|r| r.holds)
    }

    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.rows.iter().map(|r| r.elapsed).sum()
    }

    /// Total product states explored.
    pub fn total_states(&self) -> usize {
        self.rows.iter().map(|r| r.stats.product_states).sum()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<74} {:>10} {:>12} {:>10}\n",
            "property", "result", "prod.states", "time"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<74} {:>10} {:>12} {:>9.1?}\n",
                truncate(&r.name, 74),
                if r.holds { "PASS" } else { "FAIL" },
                r.stats.product_states,
                r.elapsed,
            ));
        }
        out.push_str(&format!(
            "total: {} properties, {} product states, {:.1?}\n",
            self.rows.len(),
            self.total_states(),
            self.total_time(),
        ));
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

/// Runs the complete 21-property suite and returns the report.
///
/// Models: the VRASED key guard (P01–P03) and SW-Att atomicity monitor
/// (P04–P08), the APEX `EXEC` monitor with LTL 3 (P09–P17), the ASAP
/// IVT guard of Fig. 3 (P18–P20) and the composite ASAP monitor (P21).
pub fn verify_all() -> SuiteReport {
    let mut rows = Vec::new();
    let mut push = |model: &'static str, suite_rows: Vec<ltl_mc::mc::SuiteRow>| {
        for row in suite_rows {
            rows.push(PropertyRow {
                name: row.name,
                model,
                holds: row.result.holds,
                stats: row.result.stats,
                elapsed: row.result.elapsed,
            });
        }
    };

    let k = kripke_of(&KeyGuard::for_model());
    push("vrased.key_guard", check_suite(&k, &KeyGuard::properties()));

    let k = kripke_of_constrained(&SwAttAtomicity::for_model(), SwAttAtomicity::env_constraint);
    push(
        "vrased.atomicity",
        check_suite(&k, &SwAttAtomicity::properties()),
    );

    let k = kripke_of_constrained(&ApexMonitor::for_model(), ApexMonitor::env_constraint);
    push("apex.exec", check_suite(&k, &ApexMonitor::properties()));

    let k = kripke_of(&IvtGuard::for_model());
    push("asap.ivt_guard", check_suite(&k, &IvtGuard::properties()));

    let k = kripke_of_constrained(&AsapMonitor::for_model(), AsapMonitor::env_constraint);
    push(
        "asap.composite",
        check_suite(&k, &AsapMonitor::properties()),
    );

    SuiteReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_properties_and_all_hold() {
        let report = verify_all();
        assert_eq!(report.rows.len(), 21, "the paper's property count");
        for row in &report.rows {
            assert!(row.holds, "{} ({}) must hold", row.name, row.model);
        }
        assert!(report.all_hold());
    }

    #[test]
    fn report_renders() {
        let report = verify_all();
        let text = report.render();
        assert!(text.contains("P01"));
        assert!(text.contains("P21"));
        assert!(text.contains("PASS"));
        assert!(!text.contains("FAIL"));
    }
}
