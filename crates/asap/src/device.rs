//! The prover device: MCU + peripherals + security monitors + SW-Att.
//!
//! This is the integration point of Fig. 2: the CPU core executes the
//! linked image while `HW-Mod` (VRASED guards + the APEX or ASAP `EXEC`
//! monitor) observes every step's wires. The device also implements the
//! SW-Att ROM trap: when asked to attest, it simulates the trusted ROM
//! routine — synthesizing the corresponding bus signals so the monitors
//! *observe* the attestation code running — and charges its cycle cost.

use crate::error::AsapError;
use crate::monitor::AsapMonitor;
use apex_pox::monitor::ApexMonitor;
use apex_pox::protocol::{pox_items, PoxRequest, PoxResponse};
use ltl_mc::trace::Trace;
use msp430_tools::link::Image;
use openmsp430::bus::{Master, MemAccess};
use openmsp430::hwmod::{Compose, HwModule, ObservesWires, WireSet};
use openmsp430::layout::MemLayout;
use openmsp430::mcu::Mcu;
use openmsp430::periph::DmaOp;
use openmsp430::signals::Signals;
use openmsp430::superblock::{SbConfig, SbExit, SbStep, StepCtl};
use periph::gpio::{Gpio, PORT1_VECTOR, PORT2_VECTOR};
use periph::{DmaController, Timer, Uart};
use std::fmt;
use vrased::hw::{swatt_exit_addr, KeyGuard, SwAttAtomicity};
use vrased::props::{names, ErInfo, PropCtx, WireImage};
use vrased::swatt::{attest, swatt_cycle_cost, CHAL_LEN};

/// A streaming consumer of per-step waveform samples — the opt-in
/// alternative to buffering a [`WaveSample`] per step inside the device.
pub type WaveSink = Box<dyn FnMut(WaveSample) + Send>;

/// A streaming consumer of every step's full [`Signals`] bundle.
/// Installing one forces the superblock executor to materialize
/// interior steps (elision would hide signals the tap must see).
pub type SignalTap = Box<dyn FnMut(&Signals) + Send>;

/// Which PoX architecture the hardware implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoxMode {
    /// APEX: interrupts during `ER` execution invalidate the proof.
    Apex,
    /// ASAP: interrupts are tolerated while the PC stays inside `ER`;
    /// the IVT is guarded and attested.
    Asap,
}

/// Fluent constructor for [`Device`], obtained from [`Device::builder`].
///
/// Replaces the old positional `Device::new(image, mode, key)` calls:
/// every knob is named, the defaults (ASAP mode, default layout, no
/// capture) are explicit, and a missing key is a typed
/// [`AsapError::MissingKey`] rather than a positional-argument shuffle.
///
/// # Examples
///
/// ```
/// use asap::device::{Device, PoxMode};
/// use asap::programs;
///
/// let image = programs::fig4_authorized()?;
/// let device = Device::builder(&image)
///     .mode(PoxMode::Asap)
///     .key(b"device-key")
///     .record_wave(true)
///     .build()?;
/// assert_eq!(device.mode(), PoxMode::Asap);
/// # Ok::<(), asap::AsapError>(())
/// ```
pub struct DeviceBuilder<'a> {
    image: &'a Image,
    mode: PoxMode,
    key: Option<Vec<u8>>,
    layout: MemLayout,
    record_wave: bool,
    record_trace: bool,
    wave_sink: Option<WaveSink>,
    signal_tap: Option<SignalTap>,
    superblocks: bool,
}

impl fmt::Debug for DeviceBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceBuilder")
            .field("mode", &self.mode)
            .field("record_wave", &self.record_wave)
            .field("record_trace", &self.record_trace)
            .field("streaming", &self.wave_sink.is_some())
            .field("superblocks", &self.superblocks)
            .finish()
    }
}

impl<'a> DeviceBuilder<'a> {
    fn new(image: &'a Image) -> DeviceBuilder<'a> {
        DeviceBuilder {
            image,
            mode: PoxMode::Asap,
            key: None,
            layout: MemLayout::default(),
            record_wave: false,
            record_trace: false,
            wave_sink: None,
            signal_tap: None,
            superblocks: true,
        }
    }

    /// Selects the PoX architecture (default: [`PoxMode::Asap`]).
    pub fn mode(mut self, mode: PoxMode) -> Self {
        self.mode = mode;
        self
    }

    /// Provisions the device key (required).
    pub fn key(mut self, key: &[u8]) -> Self {
        self.key = Some(key.to_vec());
        self
    }

    /// Uses a custom memory layout (default: [`MemLayout::default`]).
    pub fn layout(mut self, layout: MemLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Records one [`WaveSample`] per step (Fig. 5 signals). Off by
    /// default: waveform capture costs memory on long runs.
    pub fn record_wave(mut self, on: bool) -> Self {
        self.record_wave = on;
        self
    }

    /// Records a proposition trace for LTL conformance checking, as if
    /// [`Device::record_trace`] were called at power-on.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Streams one [`WaveSample`] per step into `sink` instead of (or in
    /// addition to) buffering them on the device — e.g. to feed an
    /// incremental VCD writer or an on-line dashboard without the
    /// unbounded `Vec` growth of [`DeviceBuilder::record_wave`] on long
    /// runs.
    pub fn stream_wave(mut self, sink: impl FnMut(WaveSample) + Send + 'static) -> Self {
        self.wave_sink = Some(Box::new(sink));
        self
    }

    /// Streams every step's full [`Signals`] into `tap` — for digest
    /// pipelines and bit-identity harnesses. Forces the superblock
    /// executor to materialize interior steps.
    pub fn stream_signals(mut self, tap: impl FnMut(&Signals) + Send + 'static) -> Self {
        self.signal_tap = Some(Box::new(tap));
        self
    }

    /// Enables or disables superblock execution in the internal run
    /// loops (default: on). `step`/`step_into` are always per-step;
    /// this knob exists for ablation benchmarks and bit-identity
    /// cross-checks against the per-step pipeline.
    pub fn superblocks(mut self, on: bool) -> Self {
        self.superblocks = on;
        self
    }

    /// Builds the device.
    ///
    /// # Errors
    ///
    /// [`AsapError::MissingKey`] when no key was provided;
    /// [`AsapError::NoEr`], [`AsapError::BadLayout`] or
    /// [`AsapError::ErOutsideProgram`] when the image and layout do not
    /// form a provable configuration.
    pub fn build(self) -> Result<Device, AsapError> {
        let key = self.key.ok_or(AsapError::MissingKey)?;
        let mut device = Device::assemble(self.image, self.mode, &key, self.layout)?;
        if self.record_wave {
            device.wave = Some(Vec::new());
        }
        device.wave_sink = self.wave_sink;
        device.signal_tap = self.signal_tap;
        device.superblocks = self.superblocks;
        if self.record_trace {
            device.record_trace();
        }
        Ok(device)
    }
}

/// One waveform sample per step — the signals of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSample {
    /// Cycle count after the step.
    pub cycle: u64,
    /// Program counter.
    pub pc: u16,
    /// The `irq` wire.
    pub irq: bool,
    /// The `EXEC` wire.
    pub exec: bool,
}

/// What one device step did.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// The raw signals.
    pub signals: Signals,
    /// `EXEC` after the step.
    pub exec: bool,
    /// A VRASED guard forced a hard reset this step.
    pub reset: bool,
    /// Violations raised this step.
    pub violations: Vec<String>,
}

/// The VRASED guard pair every device carries, as one static composition.
type VrasedGuards = Compose<KeyGuard, SwAttAtomicity>;

/// The complete `HW-Mod` stack of Fig. 2 as a statically composed monitor
/// — VRASED's key guard and SW-Att atomicity conjoined with the
/// mode-specific `EXEC` monitor (the APEX kernel, or ASAP's kernel +
/// `IvtGuard` composite). One enum arm per architecture, each a concrete
/// [`Compose`] chain: the per-step walk is fully monomorphized, with no
/// `dyn HwModule` dispatch and no heap allocation on the clean path.
#[derive(Clone, PartialEq)]
enum MonitorStack {
    Apex(Compose<VrasedGuards, ApexMonitor>),
    Asap(Compose<VrasedGuards, AsapMonitor>),
}

/// The merged output wires of one monitor-stack clock. Plain booleans:
/// violation text is rendered by the device only on the rising edges, so
/// the clean path allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
struct StackOut {
    exec: bool,
    reset: bool,
    key_raised: bool,
    atomicity_raised: bool,
    exec_fell: bool,
}

impl StackOut {
    fn violations(&self) -> usize {
        self.key_raised as usize + self.atomicity_raised as usize + self.exec_fell as usize
    }
}

impl MonitorStack {
    fn new(ctx: PropCtx, mode: PoxMode) -> MonitorStack {
        let guards = Compose(KeyGuard::new(ctx), SwAttAtomicity::new(ctx));
        match mode {
            PoxMode::Apex => MonitorStack::Apex(Compose(guards, ApexMonitor::new(ctx))),
            PoxMode::Asap => MonitorStack::Asap(Compose(guards, AsapMonitor::new(ctx))),
        }
    }

    /// Clocks every monitor against one shared single-pass [`WireImage`]
    /// extraction — the hardware picture exactly: all modules sample the
    /// same wires on the same clock edge, and the outputs conjoin.
    fn step_wires(&mut self, ctx: &PropCtx, signals: &Signals) -> StackOut {
        self.step_image(&WireImage::of(ctx, signals))
    }

    /// Clocks every monitor with an already-extracted wire image — the
    /// shared back half of [`MonitorStack::step_wires`] and the
    /// superblock fast path (whose elided steps build the image from a
    /// [`openmsp430::superblock::WireSummary`] instead of full signals).
    fn step_image(&mut self, w: &WireImage) -> StackOut {
        let (guards, exec) = match self {
            MonitorStack::Apex(Compose(guards, monitor)) => (guards, monitor.step_wires(w)),
            MonitorStack::Asap(Compose(guards, monitor)) => (guards, monitor.step_wires(w)),
        };
        let key = guards.0.step_wires(w);
        let atomicity = guards.1.step_wires(w);
        StackOut {
            exec: exec.wire,
            reset: key.wire || atomicity.wire,
            key_raised: key.raised,
            atomicity_raised: atomicity.raised,
            exec_fell: exec.raised,
        }
    }

    /// The build-time union of every wire the stack for `mode` samples —
    /// what the superblock executor may elide is exactly the complement.
    fn observed_wires(mode: PoxMode) -> WireSet {
        match mode {
            PoxMode::Apex => <Compose<VrasedGuards, ApexMonitor>>::OBSERVES,
            PoxMode::Asap => <Compose<VrasedGuards, AsapMonitor>>::OBSERVES,
        }
    }

    fn reset(&mut self) {
        match self {
            MonitorStack::Apex(stack) => stack.reset(),
            MonitorStack::Asap(stack) => stack.reset(),
        }
    }

    fn exec(&self) -> bool {
        match self {
            MonitorStack::Apex(stack) => stack.1.exec(),
            MonitorStack::Asap(stack) => stack.1.exec(),
        }
    }
}

/// The allocation-free outcome of one [`Device::step_into`] call; the
/// signals themselves land in the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepVerdict {
    /// `EXEC` after the step.
    pub exec: bool,
    /// A VRASED guard forced a hard reset this step.
    pub reset: bool,
    /// Number of violations raised this step (full text in
    /// [`Device::violations`]).
    pub violations: usize,
}

/// The prover device.
pub struct Device {
    /// The underlying MCU (exposed for tests and examples).
    pub mcu: Mcu,
    ctx: PropCtx,
    mode: PoxMode,
    er: ErInfo,
    key: Vec<u8>,
    stack: MonitorStack,
    trace: Option<Trace>,
    wave: Option<Vec<WaveSample>>,
    wave_sink: Option<WaveSink>,
    signal_tap: Option<SignalTap>,
    superblocks: bool,
    violations: Vec<(u64, String)>,
    resets: u64,
    /// Reused per-step signal buffer for the internal run loops and the
    /// synthetic SW-Att steps, so attestation rounds allocate nothing for
    /// signal traffic.
    scratch: Signals,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("mode", &self.mode)
            .field("pc", &self.mcu.cpu.regs.pc())
            .field("exec", &self.exec())
            .field("resets", &self.resets)
            .finish()
    }
}

impl Device {
    /// Starts building a device that runs `image`. See [`DeviceBuilder`]
    /// for the knobs; `.key(..)` is required.
    ///
    /// The standard peripheral set is attached: a timer, GPIO ports P1
    /// (button, interrupt-capable), P2 and P5 (actuation), a UART and a
    /// DMA controller. The device key is written to the hardware-gated
    /// key region and the `EXEC` flag is exposed as a read-only MMIO
    /// word at [`MemLayout::exec_flag_addr`].
    pub fn builder(image: &Image) -> DeviceBuilder<'_> {
        DeviceBuilder::new(image)
    }

    /// The construction path behind [`DeviceBuilder::build`].
    fn assemble(
        image: &Image,
        mode: PoxMode,
        key: &[u8],
        mut layout: MemLayout,
    ) -> Result<Device, AsapError> {
        let er_bounds = image.er.as_ref().ok_or(AsapError::NoEr)?;
        let er = ErInfo {
            min: er_bounds.min,
            exit: er_bounds.exit,
            region: er_bounds.region,
        };
        layout.er = er.region;
        layout.validate()?;
        if !layout.program.contains_region(&er.region) {
            return Err(AsapError::ErOutsideProgram);
        }
        let ctx = PropCtx::with_er(layout, er);

        let mut mcu = Mcu::new(layout);
        mcu.add_peripheral(Box::new(Timer::new()));
        mcu.add_peripheral(Box::new(Gpio::port(1, Some(PORT1_VECTOR))));
        mcu.add_peripheral(Box::new(Gpio::port(2, Some(PORT2_VECTOR))));
        mcu.add_peripheral(Box::new(Gpio::port(5, None)));
        mcu.add_peripheral(Box::new(Uart::new()));
        mcu.add_peripheral(Box::new(DmaController::new()));
        mcu.add_hw_cell(layout.exec_flag_addr, 0);

        image.load_into(&mut mcu.mem);
        // Provision the device key (normally burned at manufacture).
        let mut key_bytes = vec![0u8; layout.key.len() as usize];
        let n = key.len().min(key_bytes.len());
        key_bytes[..n].copy_from_slice(&key[..n]);
        mcu.mem.load(layout.key.start(), &key_bytes);
        mcu.reset();
        // Warm the predecode cache over the proved region; everything
        // else fills lazily on first fetch.
        mcu.predecode(er.region);

        Ok(Device {
            mcu,
            ctx,
            mode,
            er,
            key: key_bytes,
            stack: MonitorStack::new(ctx, mode),
            trace: None,
            wave: None,
            wave_sink: None,
            signal_tap: None,
            superblocks: true,
            violations: Vec::new(),
            resets: 0,
            scratch: Signals::default(),
        })
    }

    /// The PoX architecture in force.
    pub fn mode(&self) -> PoxMode {
        self.mode
    }

    /// The `ER` geometry.
    pub fn er(&self) -> ErInfo {
        self.er
    }

    /// The proposition context (layout + `ER`).
    pub fn ctx(&self) -> &PropCtx {
        &self.ctx
    }

    /// Current `EXEC` level.
    pub fn exec(&self) -> bool {
        self.stack.exec()
    }

    /// Number of VRASED-forced hard resets so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// All violations recorded so far, with the step they occurred at.
    pub fn violations(&self) -> &[(u64, String)] {
        &self.violations
    }

    /// Starts recording a proposition trace (for LTL conformance checks).
    pub fn record_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// The recorded trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The recorded waveform samples (Fig. 5 signals). Empty unless the
    /// device was built with [`DeviceBuilder::record_wave`].
    pub fn wave(&self) -> &[WaveSample] {
        self.wave.as_deref().unwrap_or(&[])
    }

    /// Clocks the monitor stack with one step's signals and applies its
    /// output wires. The clean path (no violation, no capture sink)
    /// performs no heap allocation.
    fn observe(&mut self, signals: &Signals) -> StepVerdict {
        let out = self.stack.step_wires(&self.ctx, signals);

        let exec = out.exec;
        self.mcu
            .set_hw_cell(self.ctx.layout.exec_flag_addr, exec as u16);

        if out.key_raised {
            self.violations
                .push((signals.step, KeyGuard::VIOLATION.into()));
        }
        if out.atomicity_raised {
            self.violations
                .push((signals.step, SwAttAtomicity::VIOLATION.into()));
        }
        if out.exec_fell {
            let message = match self.mode {
                PoxMode::Apex => ApexMonitor::EXEC_CLEARED,
                PoxMode::Asap => AsapMonitor::EXEC_CLEARED,
            };
            self.violations.push((signals.step, message.into()));
        }

        if let Some(trace) = self.trace.as_mut() {
            let mut props = self.ctx.props_of(signals);
            if exec {
                props.insert(names::EXEC.to_string());
            }
            if out.reset {
                props.insert(names::RESET.to_string());
            }
            trace.push_state(props);
        }
        if self.wave.is_some() || self.wave_sink.is_some() {
            let sample = WaveSample {
                cycle: signals.cycle,
                pc: signals.pc,
                irq: signals.irq,
                exec,
            };
            if let Some(buffer) = self.wave.as_mut() {
                buffer.push(sample);
            }
            if let Some(sink) = self.wave_sink.as_mut() {
                sink(sample);
            }
        }
        if let Some(tap) = self.signal_tap.as_mut() {
            tap(signals);
        }

        if out.reset {
            self.hard_reset();
        }
        StepVerdict {
            exec,
            reset: out.reset,
            violations: out.violations(),
        }
    }

    /// VRASED's response to a guard violation: hard MCU reset (monitors
    /// included; `EXEC` returns to 0).
    fn hard_reset(&mut self) {
        self.mcu.reset();
        self.stack.reset();
        self.resets += 1;
    }

    /// Executes one step.
    ///
    /// Compatibility wrapper over [`Device::step_into`]: allocates a
    /// fresh [`Signals`] (and its report) per call. Hot loops should hold
    /// one `Signals` and call `step_into`.
    pub fn step(&mut self) -> StepReport {
        let mut signals = Signals::default();
        let verdict = self.step_into(&mut signals);
        let raised = &self.violations[self.violations.len() - verdict.violations..];
        let violations = raised.iter().map(|(_, v)| v.clone()).collect();
        StepReport {
            signals,
            exec: verdict.exec,
            reset: verdict.reset,
            violations,
        }
    }

    /// Executes one step, writing the observed signals into the
    /// caller-owned `signals` buffer (cleared and refilled in place) and
    /// clocking the monitor stack against them. The fast path of the
    /// step pipeline: no per-step allocation once the buffer's capacity
    /// has stabilized.
    pub fn step_into(&mut self, signals: &mut Signals) -> StepVerdict {
        self.mcu.step_into(signals);
        self.observe(signals)
    }

    /// Runs up to `max_steps`, stopping early when the PC reaches
    /// `stop_pc`. Returns true if the stop address was reached.
    pub fn run_until_pc(&mut self, stop_pc: u16, max_steps: u64) -> bool {
        if self.superblocks {
            return self.run_fast(Some(stop_pc), max_steps);
        }
        let mut signals = std::mem::take(&mut self.scratch);
        let mut outcome = None;
        for _ in 0..max_steps {
            if self.mcu.cpu.regs.pc() == stop_pc {
                outcome = Some(true);
                break;
            }
            self.step_into(&mut signals);
            if signals.fault.is_some() {
                outcome = Some(false);
                break;
            }
        }
        let reached = outcome.unwrap_or_else(|| self.mcu.cpu.regs.pc() == stop_pc);
        self.scratch = signals;
        reached
    }

    /// Runs exactly `steps` steps (or until a CPU fault).
    pub fn run_steps(&mut self, steps: u64) {
        if self.superblocks {
            self.run_fast(None, steps);
            return;
        }
        let mut signals = std::mem::take(&mut self.scratch);
        for _ in 0..steps {
            self.step_into(&mut signals);
            if signals.fault.is_some() {
                break;
            }
        }
        self.scratch = signals;
    }

    /// The superblock-backed run loop behind [`Device::run_steps`] and
    /// [`Device::run_until_pc`].
    ///
    /// Bursts through cached straight-line traces, clocking the monitor
    /// stack once per interior step from either an elided
    /// [`openmsp430::superblock::WireSummary`] (the common case: only
    /// the wires the composed stack declares via `ObservesWires` are
    /// computed) or a fully materialized [`Signals`] bundle (forced by
    /// trace/wave capture and signal taps). Steps the executor cannot
    /// run inside a trace — interrupt servicing, MMIO fetches, halted
    /// CPU — fall back to exactly one [`Device::step_into`], so the
    /// machine and every monitor see the same history, bit for bit, as
    /// the per-step pipeline.
    fn run_fast(&mut self, stop_pc: Option<u16>, max_steps: u64) -> bool {
        let observed = MonitorStack::observed_wires(self.mode);
        let mut signals = std::mem::take(&mut self.scratch);
        let mut remaining = max_steps;
        let mut outcome = None;
        while remaining > 0 {
            if let Some(sp) = stop_pc {
                if self.mcu.cpu.regs.pc() == sp {
                    outcome = Some(true);
                    break;
                }
            }
            let cfg = SbConfig {
                budget: remaining,
                stop_pc,
                exec_cell: Some(self.ctx.layout.exec_flag_addr),
                observed,
                materialize: self.trace.is_some()
                    || self.wave.is_some()
                    || self.wave_sink.is_some()
                    || self.signal_tap.is_some(),
            };
            let mut reset_pending = false;
            // Monitor clock gating: once clocking the stack with a given
            // wire picture provably left every FSM unchanged (a fixed
            // point — checked by state comparison), repeating the same
            // picture must repeat the same output, so the kernels are
            // skipped until the wires change. Scoped to one burst: any
            // out-of-band clocking (per-step fallback, hard reset)
            // starts the next burst ungated.
            type WireKey = (u16, [bool; 10]);
            let mut gate: Option<(WireKey, StackOut)> = None;
            let mut gate_stable = false;
            let (done, exit) = {
                // Disjoint field borrows: the executor owns `mcu`, the
                // observer closure owns the monitor stack and captures.
                let Device {
                    mcu,
                    ctx,
                    mode,
                    stack,
                    trace,
                    wave,
                    wave_sink,
                    signal_tap,
                    violations,
                    ..
                } = self;
                let mode = *mode;
                mcu.run_superblock(&cfg, &mut signals, |step| {
                    let (out, at_step) = match step {
                        SbStep::Wires(s) => {
                            let key: WireKey = (
                                s.pc,
                                [
                                    s.fault,
                                    s.dma_active,
                                    s.ren_key,
                                    s.dma_key,
                                    s.wen_ivt,
                                    s.dma_ivt,
                                    s.wen_or,
                                    s.dma_or,
                                    s.wen_er,
                                    s.dma_er,
                                ],
                            );
                            let out = match gate {
                                Some((gated, out)) if gate_stable && gated == key => out,
                                _ => {
                                    let before = stack.clone();
                                    let out = stack.step_image(&WireImage::of_summary(ctx, s));
                                    gate_stable = *stack == before;
                                    gate = Some((key, out));
                                    out
                                }
                            };
                            (out, s.step)
                        }
                        SbStep::Signals(s) => (stack.step_image(&WireImage::of(ctx, s)), s.step),
                    };
                    if out.key_raised {
                        violations.push((at_step, KeyGuard::VIOLATION.into()));
                    }
                    if out.atomicity_raised {
                        violations.push((at_step, SwAttAtomicity::VIOLATION.into()));
                    }
                    if out.exec_fell {
                        let message = match mode {
                            PoxMode::Apex => ApexMonitor::EXEC_CLEARED,
                            PoxMode::Asap => AsapMonitor::EXEC_CLEARED,
                        };
                        violations.push((at_step, message.into()));
                    }
                    if let SbStep::Signals(s) = step {
                        if let Some(trace) = trace.as_mut() {
                            let mut props = ctx.props_of(s);
                            if out.exec {
                                props.insert(names::EXEC.to_string());
                            }
                            if out.reset {
                                props.insert(names::RESET.to_string());
                            }
                            trace.push_state(props);
                        }
                        if wave.is_some() || wave_sink.is_some() {
                            let sample = WaveSample {
                                cycle: s.cycle,
                                pc: s.pc,
                                irq: s.irq,
                                exec: out.exec,
                            };
                            if let Some(buffer) = wave.as_mut() {
                                buffer.push(sample);
                            }
                            if let Some(sink) = wave_sink.as_mut() {
                                sink(sample);
                            }
                        }
                        if let Some(tap) = signal_tap.as_mut() {
                            tap(s);
                        }
                    }
                    reset_pending |= out.reset;
                    StepCtl {
                        exec: out.exec,
                        stop: out.reset,
                    }
                })
            };
            remaining -= done;
            if reset_pending {
                self.hard_reset();
            }
            match exit {
                SbExit::Budget => break,
                SbExit::StopPc => {
                    outcome = Some(true);
                    break;
                }
                SbExit::ObserverStop => continue,
                SbExit::Fault => {
                    outcome = Some(false);
                    break;
                }
                SbExit::NeedStep => {
                    if remaining == 0 {
                        break;
                    }
                    self.mcu.step_into(&mut signals);
                    self.observe(&signals);
                    remaining -= 1;
                    if signals.fault.is_some() {
                        outcome = Some(false);
                        break;
                    }
                }
            }
        }
        let reached =
            outcome.unwrap_or_else(|| stop_pc.is_some_and(|sp| self.mcu.cpu.regs.pc() == sp));
        self.scratch = signals;
        reached
    }

    /// Models an attacker-controlled CPU instruction writing `value` at
    /// `addr` (the write is driven through the monitors as a CPU-mastered
    /// bus access executed from untrusted code outside `ER`).
    pub fn attacker_cpu_write(&mut self, addr: u16, value: u16) {
        self.mcu.mem.write_word(addr, value);
        let pc = self.mcu.cpu.regs.pc();
        let gie = self.mcu.cpu.regs.gie();
        let cpu_off = self.mcu.cpu.regs.cpu_off();
        let mut signals = std::mem::take(&mut self.scratch);
        self.fill_synthetic_step(&mut signals, pc, &[MemAccess::write(addr, value, false)]);
        signals.gie = gie;
        signals.cpu_off = cpu_off;
        self.observe(&signals);
        self.scratch = signals;
    }

    /// Queues a DMA write of `value` to `addr`, performed by the DMA
    /// master on the next step.
    pub fn attacker_dma_write(&mut self, addr: u16, value: u16) {
        // Stage the value in a scratch location and copy it via DMA so
        // the access is genuinely DMA-mastered.
        let scratch = self.ctx.layout.data.end() & !1;
        self.mcu.mem.write_word(scratch, value);
        self.mcu.inject_dma(DmaOp {
            src: scratch,
            dst: addr,
            byte: false,
        });
    }

    /// Presses (or releases) the button wired to GPIO port 1, pin
    /// `pin` — the asynchronous event of Fig. 4 / §3.
    pub fn set_button(&mut self, pin: u8, level: bool) {
        let p1: &mut Gpio = self.mcu.periph_mut().expect("port 1 attached");
        p1.set_input(pin, level);
    }

    /// Delivers bytes to the UART receiver (the network command path of
    /// §3).
    pub fn uart_rx(&mut self, bytes: &[u8]) {
        let uart: &mut Uart = self.mcu.periph_mut().expect("uart attached");
        uart.rx_push_bytes(bytes);
    }

    /// The bytes currently in the output region `OR`.
    pub fn or_bytes(&self) -> Vec<u8> {
        self.mcu.mem.snapshot(self.ctx.layout.or)
    }

    /// The bytes of the executable region.
    pub fn er_bytes(&self) -> Vec<u8> {
        self.mcu.mem.snapshot(self.er.region)
    }

    /// The current IVT contents.
    pub fn ivt_bytes(&self) -> Vec<u8> {
        self.mcu.mem.snapshot(self.ctx.layout.ivt)
    }

    /// Runs the SW-Att ROM routine for a PoX request and returns the
    /// response.
    ///
    /// The routine is simulated natively: the device synthesizes the
    /// bus-signal footprint of the ROM execution (entry at the ROM's
    /// first instruction, key reads, measurement reads, MAC write, exit
    /// from the ROM's last instruction) and clocks every monitor with
    /// it, then charges the HMAC cycle cost. Monitors therefore observe
    /// the attestation exactly as they would observe real ROM code.
    pub fn attest(&mut self, req: &PoxRequest) -> PoxResponse {
        let layout = self.ctx.layout;
        let chal: [u8; CHAL_LEN] = *req.chal.as_bytes();

        // --- Step 1: enter SW-Att at its first instruction.
        self.swatt_step(layout.swatt.start(), &[]);

        // --- Step 2: the measurement body — key + region reads.
        let exec = self.exec();
        let er_bytes = self.er_bytes();
        let or_bytes = self.or_bytes();
        let ivt = match self.mode {
            PoxMode::Asap => Some((layout.ivt, self.ivt_bytes())),
            PoxMode::Apex => None,
        };
        let mut accesses = [MemAccess::read(0, 0, true); 4];
        let mut measured_regions = 3;
        accesses[0] = MemAccess::read(layout.key.start(), 0, true);
        accesses[1] = MemAccess::read(self.er.region.start(), 0, true);
        accesses[2] = MemAccess::read(layout.or.start(), 0, true);
        if self.mode == PoxMode::Asap {
            accesses[3] = MemAccess::read(layout.ivt.start(), 0, true);
            measured_regions = 4;
        }
        self.swatt_step(layout.swatt.start() + 2, &accesses[..measured_regions]);

        let items = pox_items(
            exec,
            self.er.region,
            &er_bytes,
            layout.or,
            &or_bytes,
            ivt.as_ref().map(|(r, b)| (*r, b.as_slice())),
        );
        let mac = attest(&self.key, &chal, &items);
        let measured: usize = items.iter().map(|i| i.bytes.len()).sum();
        self.mcu.charge_cycles(swatt_cycle_cost(measured));

        // --- Step 3: write the MAC to the metadata region.
        self.mcu.mem.load(layout.mac_addr(), &mac);
        self.swatt_step(
            layout.swatt.start() + 4,
            &[MemAccess::write(layout.mac_addr(), 0, true)],
        );

        // --- Step 4: leave from the ROM's last instruction.
        self.swatt_step(swatt_exit_addr(&layout), &[]);
        // One step after the ROM: back in untrusted code.
        let ret_pc = self.mcu.cpu.regs.pc();
        self.swatt_step(ret_pc, &[]);

        PoxResponse {
            exec,
            output: or_bytes,
            ivt: ivt.map(|(_, b)| b),
            mac,
        }
    }

    /// Transport-level [`Device::attest`]: decodes a wire-encoded
    /// [`PoxRequest`], runs SW-Att, and returns the wire-encoded
    /// response. This is the prover end of a [`crate::PoxSession`]
    /// crossing a byte transport.
    ///
    /// # Errors
    ///
    /// [`AsapError::Wire`] when the request bytes do not decode.
    pub fn attest_bytes(&mut self, request: &[u8]) -> Result<Vec<u8>, AsapError> {
        let req = PoxRequest::from_bytes(request)?;
        Ok(self.attest(&req).to_bytes())
    }

    /// Clocks all monitors with one synthetic SW-Att step. The reused
    /// scratch buffer means attestation rounds cost no signal
    /// allocations, round after round.
    fn swatt_step(&mut self, pc: u16, accesses: &[MemAccess]) {
        debug_assert!(accesses.iter().all(|a| a.master == Master::Cpu));
        let mut signals = std::mem::take(&mut self.scratch);
        self.fill_synthetic_step(&mut signals, pc, accesses);
        self.observe(&signals);
        self.scratch = signals;
    }

    /// Renders a monitor-only synthetic step (no CPU execution) into the
    /// reusable buffer: `irq_pending` is live, everything else is the
    /// quiescent footprint plus the given bus accesses.
    fn fill_synthetic_step(&mut self, signals: &mut Signals, pc: u16, accesses: &[MemAccess]) {
        signals.cycle = self.mcu.cycles();
        signals.step = self.mcu.steps();
        signals.pc = pc;
        signals.pc_next = pc;
        signals.irq = false;
        signals.irq_vector = None;
        signals.irq_pending = self.mcu.irq_pending();
        signals.gie = false;
        signals.cpu_off = false;
        signals.idle = false;
        signals.accesses.clear();
        signals.accesses.extend_from_slice(accesses);
        signals.fault = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430_tools::link::{link, LinkConfig};

    /// The Fig. 4 program: startER calls the body; the body busy-waits;
    /// a GPIO ISR (in exec.body) writes PORT5; exitER returns.
    const FIG4: &str = "
        .section exec.start
    startER:
        call #dummy_main
        br   #exitER            ; exec.body is linked between start and leave
        .section exec.leave
    exitER:
        ret
        .section exec.body
    dummy_main:
        mov #20, r4
    loop:
        dec r4
        jnz loop
        ret
    gpio_isr:
        mov.b #0xFF, &0x0041   ; P5OUT
        reti
        .section text
    main:
        call #startER
    done:
        jmp done
    ";

    fn image() -> Image {
        let cfg = LinkConfig::new(0xE000, 0xF000)
            .vector(2, "gpio_isr")
            .reset("main");
        link(FIG4, &cfg).unwrap()
    }

    fn build() -> Device {
        Device::builder(&image())
            .key(b"test-key")
            .record_wave(true)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_runs_to_completion() {
        let mut d = build();
        assert!(!d.exec(), "EXEC is 0 at power-on");
        let img_done = 0xF004; // main is call (4 bytes) then done
        assert!(d.run_until_pc(img_done, 1000));
        assert!(d.exec(), "honest execution sets EXEC");
    }

    #[test]
    fn attestation_roundtrip_verifies() {
        use crate::verifier::{AsapVerifier, VerifierSpec};

        let img = image();
        let mut d = Device::builder(&img).key(b"test-key").build().unwrap();
        d.run_until_pc(0xF004, 1000);
        let mut vrf = AsapVerifier::new(b"test-key", VerifierSpec::from_image(&img).unwrap());
        let session = vrf.begin();
        let resp = d.attest(session.request());
        assert!(resp.exec);
        assert!(resp.ivt.is_some(), "ASAP responses carry the IVT");
        assert!(session.evidence(resp).conclude(&vrf).is_verified());
    }

    #[test]
    fn attacker_ivt_write_clears_exec() {
        let mut d = build();
        d.run_until_pc(0xF004, 1000);
        assert!(d.exec());
        d.attacker_cpu_write(0xFFE4, 0xDEAD);
        assert!(!d.exec(), "[AP1]: CPU write to IVT clears EXEC");
    }

    #[test]
    fn attacker_dma_to_ivt_clears_exec() {
        let mut d = build();
        d.run_until_pc(0xF004, 1000);
        assert!(d.exec());
        d.attacker_dma_write(0xFFE4, 0xDEAD);
        d.step();
        assert!(!d.exec(), "[AP1]: DMA write to IVT clears EXEC");
    }

    #[test]
    fn key_read_outside_swatt_forces_reset() {
        let mut d = build();
        let before = d.resets();
        // Untrusted code reads the key region.
        let key_addr = d.ctx().layout.key.start();
        let pc = d.mcu.cpu.regs.pc();
        let signals = Signals {
            cycle: d.mcu.cycles(),
            step: d.mcu.steps(),
            pc,
            pc_next: pc,
            irq: false,
            irq_vector: None,
            irq_pending: false,
            gie: false,
            cpu_off: false,
            idle: false,
            accesses: vec![MemAccess::read(key_addr, 0, true)],
            fault: None,
        };
        d.observe(&signals);
        assert_eq!(
            d.resets(),
            before + 1,
            "VRASED hard-resets on key leakage attempts"
        );
        assert!(!d.exec());
    }

    #[test]
    fn attestation_does_not_trip_guards() {
        use crate::verifier::{AsapVerifier, VerifierSpec};

        let img = image();
        let mut d = Device::builder(&img).key(b"test-key").build().unwrap();
        d.run_until_pc(0xF004, 1000);
        let mut vrf = AsapVerifier::new(b"test-key", VerifierSpec::from_image(&img).unwrap());
        let session = vrf.begin();
        let resets_before = d.resets();
        let resp = d.attest(session.request());
        assert_eq!(d.resets(), resets_before, "SW-Att runs without violations");
        assert!(resp.exec, "attestation preserves EXEC");
        assert!(d.exec());
    }

    #[test]
    fn attest_bytes_is_the_wire_face_of_attest() {
        use crate::verifier::{AsapVerifier, VerifierSpec};

        let img = image();
        let mut d = Device::builder(&img).key(b"test-key").build().unwrap();
        d.run_until_pc(0xF004, 1000);
        let mut vrf = AsapVerifier::new(b"test-key", VerifierSpec::from_image(&img).unwrap());
        let session = vrf.begin();
        let resp_bytes = d.attest_bytes(&session.request_bytes()).unwrap();
        let outcome = session.evidence_bytes(&resp_bytes).unwrap().conclude(&vrf);
        assert!(outcome.is_verified());
        assert!(
            d.attest_bytes(b"garbage").is_err(),
            "garbled requests are rejected"
        );
    }

    #[test]
    fn builder_requires_a_key() {
        use crate::error::AsapError;

        let img = image();
        assert_eq!(
            Device::builder(&img).build().unwrap_err(),
            AsapError::MissingKey
        );
    }

    #[test]
    fn wave_capture_is_opt_in() {
        let img = image();
        let mut d = Device::builder(&img).key(b"test-key").build().unwrap();
        d.run_steps(5);
        assert!(d.wave().is_empty(), "no samples unless record_wave(true)");
    }

    #[test]
    fn streaming_wave_sink_sees_every_step() {
        use std::sync::{Arc, Mutex};

        let img = image();
        let sunk = Arc::new(Mutex::new(Vec::new()));
        let tap = Arc::clone(&sunk);
        let mut d = Device::builder(&img)
            .key(b"test-key")
            .record_wave(true)
            .stream_wave(move |s| tap.lock().unwrap().push(s))
            .build()
            .unwrap();
        d.run_steps(7);
        assert_eq!(
            sunk.lock().unwrap().as_slice(),
            d.wave(),
            "the stream and the buffer observe the same samples"
        );
    }

    #[test]
    fn step_into_matches_step_reports() {
        let img = image();
        let mut a = Device::builder(&img).key(b"test-key").build().unwrap();
        let mut b = Device::builder(&img).key(b"test-key").build().unwrap();
        let mut signals = Signals::default();
        for _ in 0..40 {
            let report = a.step();
            let verdict = b.step_into(&mut signals);
            assert_eq!(report.signals, signals);
            assert_eq!(report.exec, verdict.exec);
            assert_eq!(report.reset, verdict.reset);
            assert_eq!(report.violations.len(), verdict.violations);
        }
    }

    #[test]
    fn er_tamper_after_execution_clears_exec() {
        let mut d = build();
        d.run_until_pc(0xF004, 1000);
        assert!(d.exec());
        let er_min = d.er().min;
        d.attacker_cpu_write(er_min + 8, 0x4343);
        assert!(
            !d.exec(),
            "post-execution ER modification invalidates the proof"
        );
    }

    #[test]
    fn wave_records_signals() {
        let mut d = build();
        d.run_steps(5);
        assert_eq!(d.wave().len(), 5);
        assert!(d.wave()[0].cycle > 0);
    }
}
