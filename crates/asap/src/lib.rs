//! # asap — Architecture for Secure Asynchronous Processing in PoX
//!
//! A full-system Rust reproduction of **ASAP** (Caulfield,
//! Rattanavipanon, De Oliveira Nunes — DAC 2022): proofs of execution
//! that remain sound while the proved code services interrupts.
//!
//! ASAP extends APEX with two properties (§4.2):
//!
//! * **\[AP1\] IVT Immutability & Integrity** — a verified two-state FSM
//!   (Fig. 3) clears the `EXEC` flag on any CPU/DMA write to the
//!   interrupt vector table between execution start and attestation
//!   (LTL 4), and the IVT is covered by the attestation measurement;
//! * **\[AP2\] ISR Immutability** — trusted ISRs are *linked inside* `ER`
//!   (Fig. 4), inheriting APEX's `ER` immutability; APEX's LTL 3 (any
//!   interrupt clears `EXEC`) is removed, because an unauthorized ISR
//!   necessarily drags the PC outside `ER`, which LTL 1 already punishes.
//!
//! Crate layout:
//!
//! * [`monitor`] — the ASAP hardware monitor (relaxed APEX kernel +
//!   Fig. 3 IVT guard), model-checked against its LTL specs;
//! * [`device`] — the prover: MCU, peripherals, monitors and the SW-Att
//!   ROM trap, built through [`Device::builder`]. Monitors run as one
//!   statically composed stack over a single-pass wire extraction, and
//!   [`Device::step_into`] steps the whole pipeline without heap
//!   allocation (see the README's "Execution pipeline" section);
//! * [`verifier`] — [`VerifierSpec`] derivation from the linked image
//!   plus mode-aware verification (APEX and the IVT/ISR checks);
//! * [`session`] — the [`PoxSession`] state machine
//!   (`Issued → Evidence → Verified/Rejected`) with wire-encodable
//!   messages;
//! * [`error`] — the unified [`AsapError`];
//! * [`properties`] — the complete 21-LTL-property suite of §5;
//! * [`programs`] — the paper's demo programs (Fig. 4, the §3 syringe
//!   pump, a sensing task).
//!
//! # Quick start
//!
//! One linked image drives both sides: the device boots it, and the
//! verifier derives its expectations ([`VerifierSpec::from_image`])
//! from it — there is nothing to hand-wire and nothing to mis-bind.
//!
//! ```
//! use asap::{Device, PoxMode, VerifierSpec, AsapVerifier};
//! use asap::programs;
//!
//! // Build and run the Fig. 4 program on an ASAP device.
//! let image = programs::fig4_authorized()?;
//! let mut device = Device::builder(&image)
//!     .mode(PoxMode::Asap)
//!     .key(b"device-key")
//!     .build()?;
//! device.run_until_pc(programs::done_pc(), 2_000);
//!
//! // The verifier's expectations come from the same linked image.
//! let spec = VerifierSpec::from_image(&image)?.mode(PoxMode::Asap);
//! let mut verifier = AsapVerifier::new(b"device-key", spec);
//!
//! // Issued → Evidence → Verified, one consuming step at a time.
//! let session = verifier.begin();
//! let response = device.attest(session.request());
//! let attested = session.evidence(response).conclude(&verifier).into_result()?;
//! assert!(attested.ivt.is_some(), "ASAP proofs cover the IVT");
//! # Ok::<(), asap::AsapError>(())
//! ```
//!
//! # APEX vs ASAP
//!
//! The same program, the same button press mid-`ER` — APEX rejects the
//! interrupted execution (its LTL 3 clears `EXEC` on any interrupt),
//! ASAP accepts it because the handler is linked inside `ER`:
//!
//! ```
//! use asap::{AsapVerifier, Device, PoxMode, VerifierSpec};
//! use asap::programs;
//!
//! let image = programs::fig4_authorized()?;
//! for mode in [PoxMode::Apex, PoxMode::Asap] {
//!     let mut device = Device::builder(&image).mode(mode).key(b"k").build()?;
//!     device.run_steps(10);
//!     device.set_button(0, true); // interrupt during ER
//!     device.run_until_pc(programs::done_pc(), 5_000);
//!
//!     let mut vrf =
//!         AsapVerifier::new(b"k", VerifierSpec::from_image(&image)?.mode(mode));
//!     let session = vrf.begin();
//!     let response = device.attest(session.request());
//!     let verdict = session.evidence(response).conclude(&vrf);
//!     match mode {
//!         PoxMode::Apex => assert!(!verdict.is_verified()), // LTL 3: irq kills EXEC
//!         PoxMode::Asap => assert!(verdict.is_verified()),  // trusted in-ER ISR ok
//!     }
//! }
//! # Ok::<(), asap::AsapError>(())
//! ```

pub mod device;
pub mod error;
pub mod monitor;
pub mod programs;
pub mod properties;
pub mod session;
pub mod verifier;

pub use device::{Device, DeviceBuilder, PoxMode, StepReport, StepVerdict, WaveSample, WaveSink};
pub use error::AsapError;
pub use monitor::{ivt_kernel, AsapMonitor, AsapState, IvtGuard, IvtIn};
pub use properties::{verify_all, PropertyRow, SuiteReport};
pub use session::{Attested, Evidence, Issued, PoxSession, SessionOutcome};
pub use verifier::{AsapVerifier, VerifierSpec};
