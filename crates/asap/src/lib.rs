//! # asap — Architecture for Secure Asynchronous Processing in PoX
//!
//! A full-system Rust reproduction of **ASAP** (Caulfield,
//! Rattanavipanon, De Oliveira Nunes — DAC 2022): proofs of execution
//! that remain sound while the proved code services interrupts.
//!
//! ASAP extends APEX with two properties (§4.2):
//!
//! * **\[AP1\] IVT Immutability & Integrity** — a verified two-state FSM
//!   (Fig. 3) clears the `EXEC` flag on any CPU/DMA write to the
//!   interrupt vector table between execution start and attestation
//!   (LTL 4), and the IVT is covered by the attestation measurement;
//! * **\[AP2\] ISR Immutability** — trusted ISRs are *linked inside* `ER`
//!   (Fig. 4), inheriting APEX's `ER` immutability; APEX's LTL 3 (any
//!   interrupt clears `EXEC`) is removed, because an unauthorized ISR
//!   necessarily drags the PC outside `ER`, which LTL 1 already punishes.
//!
//! Crate layout:
//!
//! * [`monitor`] — the ASAP hardware monitor (relaxed APEX kernel +
//!   Fig. 3 IVT guard), model-checked against its LTL specs;
//! * [`device`] — the prover: MCU, peripherals, monitors and the SW-Att
//!   ROM trap;
//! * [`verifier`] — APEX verification plus the IVT/ISR entry-point
//!   checks;
//! * [`properties`] — the complete 21-LTL-property suite of §5;
//! * [`programs`] — the paper's demo programs (Fig. 4, the §3 syringe
//!   pump, a sensing task).
//!
//! # Quick start
//!
//! ```
//! use asap::device::{Device, PoxMode};
//! use asap::programs;
//! use asap::verifier::AsapVerifier;
//! use std::collections::BTreeMap;
//!
//! // Build and run the Fig. 4 program on an ASAP device.
//! let image = programs::fig4_authorized()?;
//! let mut device = Device::new(&image, PoxMode::Asap, b"device-key")?;
//! device.run_until_pc(programs::done_pc(), 2_000);
//!
//! // Press the button mid-run? Here execution already finished; attest.
//! let isr = image.symbol("gpio_isr").unwrap();
//! let mut vrf = AsapVerifier::new(
//!     b"device-key",
//!     device.er_bytes(),
//!     BTreeMap::from([(periph::gpio::PORT1_VECTOR, isr)]),
//! );
//! let (er, or) = device.pox_regions();
//! let req = vrf.request(er, or);
//! let resp = device.attest(&req);
//! assert!(vrf.verify(&req, &resp).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod device;
pub mod monitor;
pub mod programs;
pub mod properties;
pub mod verifier;

pub use device::{Device, DeviceError, PoxMode, StepReport, WaveSample};
pub use monitor::{ivt_kernel, AsapMonitor, AsapState, IvtGuard, IvtIn};
pub use properties::{verify_all, PropertyRow, SuiteReport};
pub use verifier::AsapVerifier;
