//! The unified error type of the ASAP stack.
//!
//! Every fallible step of the public API — linking, device construction,
//! wire decoding, and PoX verification — reports an [`AsapError`], so
//! callers match one enum instead of juggling per-layer error types and
//! `Box<dyn Error>`. Lower-layer errors ([`apex_pox::wire::WireError`],
//! [`apex_pox::protocol::PoxError`], [`msp430_tools::link::LinkError`],
//! [`openmsp430::layout::LayoutError`]) convert in via `From`.

use apex_pox::protocol::PoxError;
use apex_pox::wire::WireError;
use msp430_tools::link::LinkError;
use openmsp430::layout::LayoutError;
use std::error::Error;
use std::fmt;

/// Anything that can go wrong between linking an image and accepting a
/// proof of execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsapError {
    // --- construction ---------------------------------------------------
    /// The image was linked without `exec.*` sections: there is no `ER`
    /// to prove.
    NoEr,
    /// The memory layout is internally inconsistent.
    BadLayout(String),
    /// The linked `ER` does not fit the layout's program region.
    ErOutsideProgram,
    /// [`DeviceBuilder`](crate::device::DeviceBuilder) was finished
    /// without a device key.
    MissingKey,
    /// Assembling/linking the program failed.
    Link(String),

    // --- transport ------------------------------------------------------
    /// A protocol message failed to decode from wire bytes.
    Wire(WireError),

    // --- verification ---------------------------------------------------
    /// The prover reported `EXEC = 0`: execution did not happen or was
    /// tampered with.
    NotExecuted,
    /// The MAC does not bind the expected `ER`/outputs/IVT under the
    /// session's challenge.
    BadMac,
    /// An ASAP response arrived without the attested IVT.
    MissingIvt,
    /// An APEX response carried an IVT report it should not have.
    UnexpectedIvt,
    /// The reported IVT routes an in-`ER` vector to an address that is
    /// not a trusted ISR entry point (the §4.2 check).
    UnexpectedIsrEntry {
        /// The offending vector number.
        vector: u8,
        /// Where it pointed.
        target: u16,
    },
}

impl fmt::Display for AsapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsapError::NoEr => write!(f, "image has no exec.* sections (no ER)"),
            AsapError::BadLayout(m) => write!(f, "bad layout: {m}"),
            AsapError::ErOutsideProgram => {
                write!(f, "linked ER lies outside program memory")
            }
            AsapError::MissingKey => write!(f, "device builder needs a key"),
            AsapError::Link(m) => write!(f, "{m}"),
            AsapError::Wire(e) => write!(f, "wire decode failed: {e}"),
            AsapError::NotExecuted => write!(f, "EXEC = 0: execution proof invalid"),
            AsapError::BadMac => write!(f, "PoX MAC mismatch"),
            AsapError::MissingIvt => write!(f, "response lacks the attested IVT"),
            AsapError::UnexpectedIvt => {
                write!(f, "APEX response unexpectedly carries an IVT report")
            }
            AsapError::UnexpectedIsrEntry { vector, target } => write!(
                f,
                "IVT vector {vector} points into ER at {target:#06x}, \
                 which is not a trusted ISR entry"
            ),
        }
    }
}

impl Error for AsapError {}

impl From<WireError> for AsapError {
    fn from(e: WireError) -> AsapError {
        AsapError::Wire(e)
    }
}

impl From<LinkError> for AsapError {
    fn from(e: LinkError) -> AsapError {
        AsapError::Link(e.to_string())
    }
}

impl From<LayoutError> for AsapError {
    fn from(e: LayoutError) -> AsapError {
        AsapError::BadLayout(e.to_string())
    }
}

impl From<PoxError> for AsapError {
    fn from(e: PoxError) -> AsapError {
        match e {
            PoxError::NotExecuted => AsapError::NotExecuted,
            PoxError::BadMac => AsapError::BadMac,
            PoxError::MissingIvt => AsapError::MissingIvt,
            PoxError::UnexpectedIsrEntry { vector, target } => {
                AsapError::UnexpectedIsrEntry { vector, target }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pox_errors_convert_losslessly() {
        assert_eq!(
            AsapError::from(PoxError::NotExecuted),
            AsapError::NotExecuted
        );
        assert_eq!(AsapError::from(PoxError::BadMac), AsapError::BadMac);
        assert_eq!(AsapError::from(PoxError::MissingIvt), AsapError::MissingIvt);
        assert_eq!(
            AsapError::from(PoxError::UnexpectedIsrEntry {
                vector: 9,
                target: 0xE004
            }),
            AsapError::UnexpectedIsrEntry {
                vector: 9,
                target: 0xE004
            }
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = AsapError::UnexpectedIsrEntry {
            vector: 2,
            target: 0xE050,
        };
        assert!(e.to_string().contains("0xe050"));
        assert!(AsapError::Wire(WireError::BadMagic)
            .to_string()
            .contains("magic"));
    }
}
