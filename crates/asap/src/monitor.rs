//! The ASAP hardware monitor: the paper's core contribution.
//!
//! ASAP modifies APEX in exactly two ways (§4.2):
//!
//! 1. **LTL 3 is removed** — the `EXEC` kernel runs with
//!    `check_irq = false`, so an interrupt no longer invalidates the
//!    proof. Control-flow integrity is preserved by the boundary rules:
//!    a trusted ISR linked *inside* `ER` keeps the PC inside `ER`
//!    (Fig. 5(a)); an untrusted ISR forces the PC outside and LTL 1
//!    clears `EXEC` (Fig. 5(b)).
//! 2. **\[AP1\] is added** — the two-state FSM of Fig. 3 ([`IvtGuard`])
//!    clears `EXEC` on any CPU or DMA write to the IVT (LTL 4) and
//!    re-arms only when execution restarts at `ERmin`.
//!
//! The composite monitor drives the device's `EXEC` wire as the
//! conjunction of both parts, and its property suite (P18–P21) includes
//! the paper's key theorem: *authorized interrupts preserve `EXEC`*.

use apex_pox::monitor::{exec_inputs, exec_kernel, ExecState};
use ltl_mc::formula::Ltl;
use ltl_mc::fsm::{InputVal, MonitorFsm};
use ltl_mc::mc::Property;
use openmsp430::hwmod::{HwAction, HwModule, ObservesWires, WireSet};
use openmsp430::signals::Signals;
use vrased::hw::WireStep;
use vrased::props::{names, PropCtx, WireImage};

fn p(name: &str) -> Ltl {
    Ltl::prop(name)
}

/// Inputs of the IVT-guard kernel (LTL 4 / Fig. 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct IvtIn {
    /// CPU write into the IVT (`Wen ∧ Daddr ∈ IVT`).
    pub wen_ivt: bool,
    /// DMA into the IVT (`DMAen ∧ DMAaddr ∈ IVT`).
    pub dma_ivt: bool,
    /// `PC = ERmin` (restart re-arms the guard).
    pub pc_at_ermin: bool,
}

/// The Fig. 3 FSM: `Run` ⇄ `NotExec`.
///
/// `true` is the `Run` state. The output is the guard's contribution to
/// the `EXEC` wire — `0` while in `NotExec`.
pub fn ivt_kernel(run: bool, i: IvtIn) -> bool {
    let write = i.wen_ivt || i.dma_ivt;
    if run {
        !write
    } else {
        i.pc_at_ermin && !write
    }
}

/// The standalone IVT-immutability guard (\[AP1\]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IvtGuard {
    ctx: Option<PropCtx>,
    run: bool,
}

impl IvtGuard {
    /// Creates the guard for runtime use (starts in `NotExec` until the
    /// first `ERmin` entry, matching the power-on value `EXEC = 0`).
    pub fn new(ctx: PropCtx) -> IvtGuard {
        IvtGuard {
            ctx: Some(ctx),
            run: false,
        }
    }

    /// Creates the guard for model checking.
    pub fn for_model() -> IvtGuard {
        IvtGuard::default()
    }

    /// Current state (`true` = `Run`).
    pub fn running(&self) -> bool {
        self.run
    }

    /// The \[AP1\] property set (P18–P20): LTL 4 plus the re-arm
    /// discipline of the Fig. 3 FSM.
    pub fn properties() -> Vec<Property> {
        let write = || p(names::WEN_IVT).or(p(names::DMA_IVT));
        vec![
            Property::new(
                "P18 LTL4 [AP1]: G(wen_ivt | dma_ivt -> !exec)",
                write().implies(p(names::EXEC).not()).globally(),
            ),
            Property::new(
                "P19 re-arm only at ERmin: G(!exec & !X pc_at_ermin -> !X exec)",
                p(names::EXEC)
                    .not()
                    .and(p(names::PC_AT_ERMIN).next().not())
                    .implies(p(names::EXEC).not().next())
                    .globally(),
            ),
            Property::new(
                "P20 Fig.3 re-arm: G(!exec & X pc_at_ermin & !X(wen_ivt|dma_ivt) -> X exec)",
                p(names::EXEC)
                    .not()
                    .and(p(names::PC_AT_ERMIN).next())
                    .and(write().next().not())
                    .implies(p(names::EXEC).next())
                    .globally(),
            ),
        ]
    }
}

impl HwModule for IvtGuard {
    fn name(&self) -> &'static str {
        "asap.ivt_guard"
    }

    fn reset(&mut self) {
        self.run = false;
    }

    fn step(&mut self, signals: &Signals) -> HwAction {
        let ctx = self.ctx.as_ref().expect("runtime monitor needs a PropCtx");
        let er = ctx.er.expect("IVT guard requires ER geometry");
        let i = IvtIn {
            wen_ivt: signals.cpu_write_in(ctx.layout.ivt),
            dma_ivt: signals.dma_in(ctx.layout.ivt),
            pc_at_ermin: signals.pc == er.min,
        };
        let was = self.run;
        self.run = ivt_kernel(self.run, i);
        let mut action = HwAction {
            exec: Some(self.run),
            ..HwAction::none()
        };
        if was && !self.run {
            action.violations.push("ASAP [AP1]: IVT modified".into());
        }
        action
    }
}

impl ObservesWires for IvtGuard {
    const OBSERVES: WireSet = WireSet::WEN_IVT
        .union(WireSet::DMA_IVT)
        .union(WireSet::PC_AT_ERMIN);
}

impl MonitorFsm for IvtGuard {
    type State = bool;

    fn initial(&self) -> bool {
        false
    }

    fn inputs(&self) -> Vec<String> {
        vec![
            names::WEN_IVT.into(),
            names::DMA_IVT.into(),
            names::PC_AT_ERMIN.into(),
        ]
    }

    fn outputs(&self) -> Vec<String> {
        vec![names::EXEC.into()]
    }

    fn step(&self, state: &bool, inputs: &InputVal<'_>) -> bool {
        ivt_kernel(
            *state,
            IvtIn {
                wen_ivt: inputs.get(names::WEN_IVT),
                dma_ivt: inputs.get(names::DMA_IVT),
                pc_at_ermin: inputs.get(names::PC_AT_ERMIN),
            },
        )
    }

    fn output(&self, state: &bool, inputs: &InputVal<'_>, name: &str) -> bool {
        assert_eq!(name, names::EXEC);
        <IvtGuard as MonitorFsm>::step(self, state, inputs)
    }
}

/// Composite register state of the ASAP monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AsapState {
    /// The relaxed APEX kernel registers.
    pub exec: ExecState,
    /// The Fig. 3 guard state (`true` = `Run`).
    pub ivt_run: bool,
}

/// The complete ASAP monitor: the APEX kernel without LTL 3, conjoined
/// with the \[AP1\] IVT guard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsapMonitor {
    ctx: Option<PropCtx>,
    state: AsapState,
}

impl AsapMonitor {
    /// Creates the monitor for runtime use.
    pub fn new(ctx: PropCtx) -> AsapMonitor {
        AsapMonitor {
            ctx: Some(ctx),
            state: AsapState::default(),
        }
    }

    /// Creates the monitor for model checking.
    pub fn for_model() -> AsapMonitor {
        AsapMonitor::default()
    }

    /// The composite `EXEC` level.
    pub fn exec(&self) -> bool {
        self.state.exec.exec && self.state.ivt_run
    }

    /// One composite kernel step.
    pub fn kernel(s: AsapState, exec_in: apex_pox::ExecIn, ivt_in: IvtIn) -> AsapState {
        AsapState {
            exec: exec_kernel(s.exec, exec_in, false),
            ivt_run: ivt_kernel(s.ivt_run, ivt_in),
        }
    }

    /// The violation message raised when the composite `EXEC` falls,
    /// shared by the `HwModule` path and the device's wire-level
    /// rendering.
    pub const EXEC_CLEARED: &'static str = "ASAP: EXEC cleared";

    /// One wire-level clock of the composite (relaxed `EXEC` kernel +
    /// \[AP1\] guard) against a pre-extracted [`WireImage`]. The returned
    /// wire is the composite `EXEC`; the edge reports it falling.
    pub fn step_wires(&mut self, w: &WireImage) -> WireStep {
        let ivt_in = IvtIn {
            wen_ivt: w.wen_ivt,
            dma_ivt: w.dma_ivt,
            pc_at_ermin: w.pc_at_ermin,
        };
        let before = self.exec();
        self.state = AsapMonitor::kernel(self.state, apex_pox::ExecIn::from_wires(w), ivt_in);
        WireStep {
            wire: self.exec(),
            raised: before && !self.exec(),
        }
    }

    /// Input wires of the composite monitor. `irq` is omitted: the ASAP
    /// kernel provably ignores it (that is the point of the paper), so
    /// the quotient is exact.
    pub fn input_names() -> Vec<String> {
        vec![
            names::PC_IN_ER.into(),
            names::PC_AT_ERMIN.into(),
            names::PC_AT_EREXIT.into(),
            names::WEN_ER.into(),
            names::DMA_ER.into(),
            names::WEN_OR.into(),
            names::DMA_OR.into(),
            names::DMA_ACTIVE.into(),
            names::FAULT.into(),
            names::WEN_IVT.into(),
            names::DMA_IVT.into(),
        ]
    }

    /// Static environment invariants (region membership and DMA
    /// activity implications).
    pub fn env_constraint(v: &InputVal<'_>) -> bool {
        (!v.get(names::PC_AT_ERMIN) || v.get(names::PC_IN_ER))
            && (!v.get(names::PC_AT_EREXIT) || v.get(names::PC_IN_ER))
            && (!v.get(names::DMA_ER) || v.get(names::DMA_ACTIVE))
            && (!v.get(names::DMA_OR) || v.get(names::DMA_ACTIVE))
            && (!v.get(names::DMA_IVT) || v.get(names::DMA_ACTIVE))
    }

    /// The composite-suite property (P21): the paper's central theorem —
    /// while the PC stays inside `ER` and no memory/DMA/fault/IVT
    /// violation occurs, `EXEC` is preserved **even across interrupts**.
    pub fn properties() -> Vec<Property> {
        let violation_next = Ltl::any([
            p(names::WEN_ER),
            p(names::DMA_ER),
            p(names::DMA_ACTIVE),
            p(names::FAULT),
            p(names::WEN_IVT),
            p(names::DMA_IVT),
            p(names::DMA_OR),
        ])
        .next();
        vec![Property::new(
            "P21 ASAP preservation: G(exec & pc_in_er & X pc_in_er & !X(violations) -> X exec)",
            p(names::EXEC)
                .and(p(names::PC_IN_ER))
                .and(p(names::PC_IN_ER).next())
                .and(violation_next.not())
                .implies(p(names::EXEC).next())
                .globally(),
        )]
    }
}

impl HwModule for AsapMonitor {
    fn name(&self) -> &'static str {
        "asap.monitor"
    }

    fn reset(&mut self) {
        self.state = AsapState::default();
    }

    fn step(&mut self, signals: &Signals) -> HwAction {
        let ctx = self.ctx.as_ref().expect("runtime monitor needs a PropCtx");
        let er = ctx.er.expect("ASAP monitor requires ER geometry");
        let exec_in = exec_inputs(ctx, signals);
        let ivt_in = IvtIn {
            wen_ivt: signals.cpu_write_in(ctx.layout.ivt),
            dma_ivt: signals.dma_in(ctx.layout.ivt),
            pc_at_ermin: signals.pc == er.min,
        };
        let before = self.exec();
        self.state = AsapMonitor::kernel(self.state, exec_in, ivt_in);
        let mut action = HwAction {
            exec: Some(self.exec()),
            ..HwAction::none()
        };
        if before && !self.exec() {
            action.violations.push(AsapMonitor::EXEC_CLEARED.into());
        }
        action
    }
}

impl ObservesWires for AsapMonitor {
    // The EXEC kernel wires minus `irq` (ASAP provably ignores it — see
    // `input_names`) plus the IVT-guard wires.
    const OBSERVES: WireSet = WireSet::PC_IN_ER
        .union(WireSet::PC_AT_ERMIN)
        .union(WireSet::PC_AT_EREXIT)
        .union(WireSet::WEN_ER)
        .union(WireSet::DMA_ER)
        .union(WireSet::WEN_OR)
        .union(WireSet::DMA_OR)
        .union(WireSet::DMA_ACTIVE)
        .union(WireSet::FAULT)
        .union(WireSet::WEN_IVT)
        .union(WireSet::DMA_IVT);
}

impl MonitorFsm for AsapMonitor {
    type State = AsapState;

    fn initial(&self) -> AsapState {
        AsapState::default()
    }

    fn inputs(&self) -> Vec<String> {
        AsapMonitor::input_names()
    }

    fn outputs(&self) -> Vec<String> {
        vec![names::EXEC.into()]
    }

    fn step(&self, state: &AsapState, inputs: &InputVal<'_>) -> AsapState {
        let exec_in = apex_pox::ExecIn {
            pc_in_er: inputs.get(names::PC_IN_ER),
            pc_at_ermin: inputs.get(names::PC_AT_ERMIN),
            pc_at_erexit: inputs.get(names::PC_AT_EREXIT),
            irq: false,
            wen_er: inputs.get(names::WEN_ER),
            dma_er: inputs.get(names::DMA_ER),
            wen_or: inputs.get(names::WEN_OR),
            dma_or: inputs.get(names::DMA_OR),
            dma_active: inputs.get(names::DMA_ACTIVE),
            fault: inputs.get(names::FAULT),
        };
        let ivt_in = IvtIn {
            wen_ivt: inputs.get(names::WEN_IVT),
            dma_ivt: inputs.get(names::DMA_IVT),
            pc_at_ermin: inputs.get(names::PC_AT_ERMIN),
        };
        AsapMonitor::kernel(*state, exec_in, ivt_in)
    }

    fn output(&self, state: &AsapState, inputs: &InputVal<'_>, name: &str) -> bool {
        assert_eq!(name, names::EXEC);
        let next = <AsapMonitor as MonitorFsm>::step(self, state, inputs);
        next.exec.exec && next.ivt_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltl_mc::fsm::{kripke_of, kripke_of_constrained};
    use ltl_mc::mc::check_suite;

    #[test]
    fn fig3_fsm_transitions() {
        // Run --write--> NotExec
        assert!(!ivt_kernel(
            true,
            IvtIn {
                wen_ivt: true,
                ..Default::default()
            }
        ));
        assert!(!ivt_kernel(
            true,
            IvtIn {
                dma_ivt: true,
                ..Default::default()
            }
        ));
        // Run --otherwise--> Run
        assert!(ivt_kernel(true, IvtIn::default()));
        // NotExec --ERmin & no write--> Run
        assert!(ivt_kernel(
            false,
            IvtIn {
                pc_at_ermin: true,
                ..Default::default()
            }
        ));
        // NotExec --ERmin & write--> NotExec (write wins)
        assert!(!ivt_kernel(
            false,
            IvtIn {
                pc_at_ermin: true,
                wen_ivt: true,
                ..Default::default()
            }
        ));
        // NotExec --otherwise--> NotExec
        assert!(!ivt_kernel(false, IvtIn::default()));
    }

    #[test]
    fn ivt_guard_suite_model_checks() {
        let k = kripke_of(&IvtGuard::for_model());
        let rows = check_suite(&k, &IvtGuard::properties());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.result.holds,
                "{} failed: {:?}",
                row.name, row.result.counterexample
            );
        }
    }

    #[test]
    fn composite_preserves_exec_across_interrupts() {
        // The Fig. 5(a) story at kernel level.
        let s0 = AsapState::default();
        let enter = apex_pox::ExecIn {
            pc_in_er: true,
            pc_at_ermin: true,
            ..Default::default()
        };
        let arm = IvtIn {
            pc_at_ermin: true,
            ..Default::default()
        };
        let s1 = AsapMonitor::kernel(s0, enter, arm);
        assert!(s1.exec.exec && s1.ivt_run);
        // Interrupt: PC jumps to the in-ER ISR (pc stays in ER).
        let isr = apex_pox::ExecIn {
            pc_in_er: true,
            irq: true,
            ..Default::default()
        };
        let s2 = AsapMonitor::kernel(s1, isr, IvtIn::default());
        assert!(
            s2.exec.exec && s2.ivt_run,
            "authorized interrupt preserves EXEC"
        );
    }

    #[test]
    fn composite_kills_exec_on_ivt_write() {
        let s0 = AsapState::default();
        let enter = apex_pox::ExecIn {
            pc_in_er: true,
            pc_at_ermin: true,
            ..Default::default()
        };
        let arm = IvtIn {
            pc_at_ermin: true,
            ..Default::default()
        };
        let s1 = AsapMonitor::kernel(s0, enter, arm);
        let s2 = AsapMonitor::kernel(
            s1,
            apex_pox::ExecIn {
                pc_in_er: true,
                ..Default::default()
            },
            IvtIn {
                wen_ivt: true,
                ..Default::default()
            },
        );
        assert!(s2.exec.exec, "the APEX part does not see IVT writes");
        assert!(!s2.ivt_run, "but [AP1] does");
    }

    #[test]
    fn composite_suite_model_checks() {
        let k = kripke_of_constrained(&AsapMonitor::for_model(), AsapMonitor::env_constraint);
        let rows = check_suite(&k, &AsapMonitor::properties());
        for row in &rows {
            assert!(
                row.result.holds,
                "{} failed: {:?}",
                row.name, row.result.counterexample
            );
        }
    }

    #[test]
    fn composite_ltl4_model_checks() {
        // P18 over the composite EXEC wire (not just the guard's).
        let k = kripke_of_constrained(&AsapMonitor::for_model(), AsapMonitor::env_constraint);
        let ltl4 = ltl_mc::mc::Property::new(
            "LTL4 over composite",
            p(names::WEN_IVT)
                .or(p(names::DMA_IVT))
                .implies(p(names::EXEC).not())
                .globally(),
        );
        let rows = check_suite(&k, &[ltl4]);
        assert!(rows[0].result.holds, "{:?}", rows[0].result.counterexample);
    }
}
