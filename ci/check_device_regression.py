#!/usr/bin/env python3
"""Guard against device step-pipeline throughput regressions.

Usage: check_device_regression.py <baseline BENCH_device.json> <fresh BENCH_device.json>

Every ablation arm recorded under `steps_per_sec` in both files —
`legacy`, `predecoded`, `superblock` — is gated at 65% of the
checked-in baseline. Derived ratios (`speedup`, `superblock_speedup`)
are reported but not gated: they move whenever one arm wobbles, and
the per-arm floors already bound both numerator and denominator.
`attestations_per_sec` rides the same 65% floor.

Smoke runs measure tiny workloads on shared runners, so the tolerance
is loose by design: the gate exists to catch a pipeline arm getting
structurally slower (a per-step allocation creeping back, a cache tier
disabled), not single-digit scheduler jitter.
"""

import json
import sys

TOLERANCE = 0.65  # fresh must reach this fraction of baseline
DERIVED = ("speedup", "superblock_speedup")


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])

    base_arms = baseline.get("steps_per_sec", {})
    fresh_arms = fresh.get("steps_per_sec", {})
    arms = sorted((set(base_arms) & set(fresh_arms)) - set(DERIVED))
    if not arms:
        sys.exit(
            "no common steps_per_sec arms: "
            f"baseline has {sorted(base_arms)}, fresh has {sorted(fresh_arms)}"
        )

    failed = []
    for arm in arms:
        ratio = fresh_arms[arm] / base_arms[arm]
        print(
            f"steps_per_sec[{arm}]: baseline {base_arms[arm]:.0f}/s, "
            f"fresh {fresh_arms[arm]:.0f}/s ({ratio:.2f}x)"
        )
        if ratio < TOLERANCE:
            failed.append(arm)

    for name in DERIVED:
        if name in base_arms and name in fresh_arms:
            print(
                f"{name}: baseline {base_arms[name]:.2f}x, "
                f"fresh {fresh_arms[name]:.2f}x (not gated)"
            )

    if "attestations_per_sec" in baseline and "attestations_per_sec" in fresh:
        b, f = baseline["attestations_per_sec"], fresh["attestations_per_sec"]
        ratio = f / b
        print(f"attestations_per_sec: baseline {b:.0f}/s, fresh {f:.0f}/s ({ratio:.2f}x)")
        if ratio < TOLERANCE:
            failed.append("attestations_per_sec")

    if failed:
        sys.exit(
            f"device throughput regressed more than "
            f"{round((1 - TOLERANCE) * 100)}% at {failed} vs the checked-in "
            "BENCH_device.json"
        )


if __name__ == "__main__":
    main()
