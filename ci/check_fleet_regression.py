#!/usr/bin/env python3
"""Guard against fleet-round throughput (and memory) regressions.

Usage: check_fleet_regression.py <baseline BENCH_fleet.json> <fresh BENCH_fleet.json>

Guarded series, compared at every point both files measured:

* **loopback**, keyed by device count, at 20% tolerance. Loopback is
  the pure verifier-side cost — no socket scheduling noise — so a
  regression there means the round pipeline itself got slower.
* **gateway/multigateway**, keyed by (devices, connections, reactors),
  at 35% tolerance. Socket rounds ride the host scheduler, so the gate
  is looser; it exists to catch the gateway loop getting structurally
  slower (an extra copy per frame, a busy-wait), not single-digit
  jitter. Rows without a `reactors` field (pre-shard baselines)
  default to 1.
* **lifecycle**, keyed by (devices, cohort): epoch throughput at 35%
  tolerance, plus enrollment RSS at 1.5x — the memory-diet bound the
  100k–1M series exists to pin. Rows without `rss_bytes` (non-Linux
  hosts) skip the memory check.
* **sustained**, keyed by (devices, connections, reactors):
  steady-state sessions/sec over ≥30 consecutive rounds through one
  persistent `FleetRuntime`, at 35% tolerance, plus the post-soak RSS
  ceiling at 1.5x — a per-round leak in the persistent reactors shows
  up here multiplied by the round count. Rows without `rss_bytes`
  skip the memory check.
* **multi_speedup** (sharded vs single-reactor gateway), at 35%
  tolerance — but *skipped with an annotation* when either file was
  measured on a host reporting `parallelism: 1` (missing field reads
  as 1): a single-core box measures mailbox/merge overhead, not
  speedup, and gating overhead noise as if it were a speedup
  regression only produces flakes.

The gate passes as long as at least one series had a common point; a
lifecycle-only smoke file checked against a full baseline is fine.
"""

import json
import sys

LOOPBACK_TOLERANCE = 0.8  # fresh must reach this fraction of baseline
GATEWAY_TOLERANCE = 0.65
LIFECYCLE_TOLERANCE = 0.65
RSS_TOLERANCE = 1.5  # fresh RSS must stay under this multiple of baseline


def load(path):
    with open(path) as f:
        return json.load(f)


def loopback_rows(doc):
    return {
        row["devices"]: row["sessions_per_sec"]
        for row in doc["rounds"]
        if row["transport"] == "loopback"
    }


def gateway_rows(doc):
    return {
        (
            row["transport"],
            row["devices"],
            row.get("connections", 1),
            row.get("reactors", 1),
        ): row["sessions_per_sec"]
        for row in doc["rounds"]
        if row["transport"] in ("gateway", "multigateway")
    }


def lifecycle_rows(doc):
    return {
        (row["devices"], row.get("cohort", 0)): row
        for row in doc["rounds"]
        if row["transport"] == "lifecycle"
    }


def sustained_rows(doc):
    return {
        (row["devices"], row.get("connections", 1), row.get("reactors", 1)): row
        for row in doc["rounds"]
        if row["transport"] == "sustained"
    }


def check_series(name, baseline, fresh, tolerance, label):
    common = sorted(set(baseline) & set(fresh))
    failed = []
    for key in common:
        ratio = fresh[key] / baseline[key]
        print(
            f"{name} @ {label(key)}: baseline {baseline[key]:.0f}/s, "
            f"fresh {fresh[key]:.0f}/s ({ratio:.2f}x)"
        )
        if ratio < tolerance:
            failed.append(key)
    if failed:
        sys.exit(
            f"{name} sessions_per_sec regressed more than "
            f"{round((1 - tolerance) * 100)}% at {failed} vs the checked-in "
            "BENCH_fleet.json"
        )
    return bool(common)


def check_lifecycle(baseline, fresh):
    common = sorted(set(baseline) & set(fresh))
    failed = []
    for key in common:
        devices, cohort = key
        b, f = baseline[key], fresh[key]
        ratio = f["sessions_per_sec"] / b["sessions_per_sec"]
        note = ""
        if "rss_bytes" in b and "rss_bytes" in f:
            rss_ratio = f["rss_bytes"] / b["rss_bytes"]
            note = (
                f", rss {b['rss_bytes'] / 2**20:.1f} -> "
                f"{f['rss_bytes'] / 2**20:.1f} MiB ({rss_ratio:.2f}x)"
            )
            if rss_ratio > RSS_TOLERANCE:
                failed.append((key, "rss_bytes"))
        print(
            f"lifecycle @ {devices} devices / {cohort} cohort: "
            f"baseline {b['sessions_per_sec']:.0f}/s, "
            f"fresh {f['sessions_per_sec']:.0f}/s ({ratio:.2f}x){note}"
        )
        if ratio < LIFECYCLE_TOLERANCE:
            failed.append((key, "sessions_per_sec"))
    if failed:
        sys.exit(
            f"lifecycle regressed at {failed} vs the checked-in "
            f"BENCH_fleet.json (throughput floor "
            f"{LIFECYCLE_TOLERANCE}x, RSS ceiling {RSS_TOLERANCE}x)"
        )
    return bool(common)


def check_sustained(baseline, fresh):
    common = sorted(set(baseline) & set(fresh))
    failed = []
    for key in common:
        devices, connections, reactors = key
        b, f = baseline[key], fresh[key]
        ratio = f["sessions_per_sec"] / b["sessions_per_sec"]
        note = ""
        if "rss_bytes" in b and "rss_bytes" in f:
            rss_ratio = f["rss_bytes"] / b["rss_bytes"]
            note = (
                f", rss {b['rss_bytes'] / 2**20:.1f} -> "
                f"{f['rss_bytes'] / 2**20:.1f} MiB ({rss_ratio:.2f}x)"
            )
            if rss_ratio > RSS_TOLERANCE:
                failed.append((key, "rss_bytes"))
        print(
            f"sustained @ {devices}d/{connections}c/{reactors}r: "
            f"baseline {b['sessions_per_sec']:.0f}/s, "
            f"fresh {f['sessions_per_sec']:.0f}/s ({ratio:.2f}x){note}"
        )
        if ratio < GATEWAY_TOLERANCE:
            failed.append((key, "sessions_per_sec"))
    if failed:
        sys.exit(
            f"sustained regressed at {failed} vs the checked-in "
            f"BENCH_fleet.json (throughput floor "
            f"{GATEWAY_TOLERANCE}x, RSS ceiling {RSS_TOLERANCE}x)"
        )
    return bool(common)


def check_multi_speedup(baseline_doc, fresh_doc):
    base = baseline_doc.get("multi_speedup")
    fresh = fresh_doc.get("multi_speedup")
    if not (base and fresh):
        return False
    base_cores = baseline_doc.get("parallelism", 1)
    fresh_cores = fresh_doc.get("parallelism", 1)
    if base_cores == 1 or fresh_cores == 1:
        print(
            f"multi_speedup: SKIPPED (parallelism baseline={base_cores}, "
            f"fresh={fresh_cores}): a single-core host measures "
            "mailbox/merge overhead, not parallel speedup, so the ratio "
            "is scheduler noise rather than a gateable signal"
        )
        return False
    ratio = fresh["vs_single_reactor"] / base["vs_single_reactor"]
    print(
        f"multi_speedup: baseline {base['vs_single_reactor']:.3f}x, "
        f"fresh {fresh['vs_single_reactor']:.3f}x ({ratio:.2f}x)"
    )
    if ratio < GATEWAY_TOLERANCE:
        sys.exit(
            f"multi_speedup regressed more than "
            f"{round((1 - GATEWAY_TOLERANCE) * 100)}% vs the checked-in "
            "BENCH_fleet.json"
        )
    return True


def main():
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])

    compared = check_series(
        "loopback",
        loopback_rows(baseline),
        loopback_rows(fresh),
        LOOPBACK_TOLERANCE,
        lambda devices: f"{devices} devices",
    )
    # Each further series is optional (the smoke modes measure
    # different subsets), but when both files measured a point it is
    # guarded.
    compared |= check_series(
        "gateway",
        gateway_rows(baseline),
        gateway_rows(fresh),
        GATEWAY_TOLERANCE,
        lambda key: f"{key[0]} {key[1]}d/{key[2]}c/{key[3]}r",
    )
    compared |= check_lifecycle(lifecycle_rows(baseline), lifecycle_rows(fresh))
    compared |= check_sustained(sustained_rows(baseline), sustained_rows(fresh))
    compared |= check_multi_speedup(baseline, fresh)
    if not compared:
        sys.exit(
            "no series had a common point: "
            f"baseline measured {sorted({r['transport'] for r in baseline['rounds']})}, "
            f"fresh measured {sorted({r['transport'] for r in fresh['rounds']})}"
        )


if __name__ == "__main__":
    main()
