#!/usr/bin/env python3
"""Guard against fleet-round throughput regressions.

Usage: check_fleet_regression.py <baseline BENCH_fleet.json> <fresh BENCH_fleet.json>

Two guarded series, compared at every point both files measured:

* **loopback**, keyed by device count, at 20% tolerance. Loopback is
  the pure verifier-side cost — no socket scheduling noise — so a
  regression there means the round pipeline itself got slower.
* **gateway/multigateway**, keyed by (devices, connections, reactors),
  at 35% tolerance. Socket rounds ride the host scheduler, so the gate
  is looser; it exists to catch the gateway loop getting structurally
  slower (an extra copy per frame, a busy-wait), not single-digit
  jitter. Rows without a `reactors` field (pre-shard baselines)
  default to 1.
"""

import json
import sys

LOOPBACK_TOLERANCE = 0.8  # fresh must reach this fraction of baseline
GATEWAY_TOLERANCE = 0.65


def load_rounds(path):
    with open(path) as f:
        return json.load(f)["rounds"]


def loopback_rows(rounds):
    return {
        row["devices"]: row["sessions_per_sec"]
        for row in rounds
        if row["transport"] == "loopback"
    }


def gateway_rows(rounds):
    return {
        (
            row["transport"],
            row["devices"],
            row.get("connections", 1),
            row.get("reactors", 1),
        ): row["sessions_per_sec"]
        for row in rounds
        if row["transport"] in ("gateway", "multigateway")
    }


def check_series(name, baseline, fresh, tolerance, label):
    common = sorted(set(baseline) & set(fresh))
    failed = []
    for key in common:
        ratio = fresh[key] / baseline[key]
        print(
            f"{name} @ {label(key)}: baseline {baseline[key]:.0f}/s, "
            f"fresh {fresh[key]:.0f}/s ({ratio:.2f}x)"
        )
        if ratio < tolerance:
            failed.append(key)
    if failed:
        sys.exit(
            f"{name} sessions_per_sec regressed more than "
            f"{round((1 - tolerance) * 100)}% at {failed} vs the checked-in "
            "BENCH_fleet.json"
        )
    return bool(common)


def main():
    baseline = load_rounds(sys.argv[1])
    fresh = load_rounds(sys.argv[2])

    compared = check_series(
        "loopback",
        loopback_rows(baseline),
        loopback_rows(fresh),
        LOOPBACK_TOLERANCE,
        lambda devices: f"{devices} devices",
    )
    if not compared:
        sys.exit(
            f"no common loopback device counts: "
            f"baseline {sorted(loopback_rows(baseline))}, "
            f"fresh {sorted(loopback_rows(fresh))}"
        )

    # The gateway series is optional (the smoke modes don't always run
    # one), but when both files measured a point it is guarded.
    check_series(
        "gateway",
        gateway_rows(baseline),
        gateway_rows(fresh),
        GATEWAY_TOLERANCE,
        lambda key: f"{key[0]} {key[1]}d/{key[2]}c/{key[3]}r",
    )


if __name__ == "__main__":
    main()
