#!/usr/bin/env python3
"""Guard against fleet-round throughput regressions.

Usage: check_fleet_regression.py <baseline BENCH_fleet.json> <fresh BENCH_fleet.json>

Compares loopback sessions_per_sec at every device count both files
measured and fails when the fresh run is more than 20% below the
checked-in baseline. Loopback is the guarded series because it is the
pure verifier-side cost — no socket scheduling noise — so a regression
there means the round pipeline itself got slower.
"""

import json
import sys

TOLERANCE = 0.8  # fresh must reach at least this fraction of baseline


def loopback_rows(path):
    with open(path) as f:
        bench = json.load(f)
    return {
        row["devices"]: row["sessions_per_sec"]
        for row in bench["rounds"]
        if row["transport"] == "loopback"
    }


def main():
    baseline = loopback_rows(sys.argv[1])
    fresh = loopback_rows(sys.argv[2])
    common = sorted(set(baseline) & set(fresh))
    if not common:
        sys.exit(
            f"no common loopback device counts: baseline {sorted(baseline)}, "
            f"fresh {sorted(fresh)}"
        )
    failed = []
    for devices in common:
        ratio = fresh[devices] / baseline[devices]
        print(
            f"loopback @ {devices} devices: baseline {baseline[devices]:.0f}/s, "
            f"fresh {fresh[devices]:.0f}/s ({ratio:.2f}x)"
        )
        if ratio < TOLERANCE:
            failed.append(devices)
    if failed:
        sys.exit(
            f"loopback sessions_per_sec regressed more than 20% at {failed} "
            "devices vs the checked-in BENCH_fleet.json"
        )


if __name__ == "__main__":
    main()
