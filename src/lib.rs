//! # asap-repro — umbrella crate for the ASAP (DAC 2022) reproduction
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can reach the whole stack, and so `cargo doc`
//! produces a single navigable tree:
//!
//! * [`openmsp430`] — the MCU instruction-set/signal simulator;
//! * [`periph`] — timer, GPIO, UART, DMA;
//! * [`pox_crypto`] — SHA-256 / HMAC-SHA256;
//! * [`msp430_tools`] — assembler, linker (Fig. 4 section discipline),
//!   disassembler;
//! * [`ltl_mc`] — LTL trace checking and explicit-state model checking;
//! * [`vrased`] — the hybrid remote-attestation substrate;
//! * [`apex_pox`] — proofs of execution (the `EXEC` monitor and the
//!   PoX wire protocol);
//! * [`asap`] — the paper's contribution: interrupt-tolerant PoX,
//!   exposed through `Device::builder`, `VerifierSpec::from_image` and
//!   the `PoxSession` state machine;
//! * [`asap_fleet`] — fleet-scale verification: the `DeviceId`-keyed
//!   `FleetVerifier` with its sharded session registry, the sans-IO
//!   `RoundEngine` (events in, frames and deadlines out, on injected
//!   logical time), and the non-blocking `Transport` layer with
//!   in-memory `Loopback` and framed TCP/UDS `StreamTransport`
//!   implementations;
//! * [`rtl_synth`] — LUT/FF cost model (Fig. 6);
//! * [`sim_wave`] — waveforms (Fig. 5).
//!
//! See `README.md` for the quickstart and the workspace map.

pub use apex_pox;
pub use asap;
pub use asap_corpus;
pub use asap_fleet;
pub use ltl_mc;
pub use msp430_tools;
pub use openmsp430;
pub use periph;
pub use pox_crypto;
pub use rtl_synth;
pub use sim_wave;
pub use vrased;
