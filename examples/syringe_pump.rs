//! The paper's §3 application: a remotely monitored syringe pump.
//!
//! Scenario A — ASAP, interrupt-driven: the pump starts injecting, arms
//! the dosage timer, sleeps, and is woken by the (trusted, in-`ER`)
//! timer ISR. The patient can abort at any moment with the button or a
//! network command. The execution is provable.
//!
//! Scenario B — the APEX workaround: busy-wait for the dose period.
//! Works, but burns the battery and cannot be aborted.
//!
//! Scenario C — an abort mid-dose under ASAP: still provable.
//!
//! Scenario D — the same interrupt-driven code under plain APEX: the
//! timer interrupt invalidates the proof (`EXEC = 0`).
//!
//! ```sh
//! cargo run --example syringe_pump
//! ```

use asap::device::{Device, PoxMode};
use asap::{programs, AsapError, AsapVerifier, VerifierSpec};

/// Current draw in active vs low-power mode (MSP430F1xx-class figures:
/// ~300 µA at 1 MHz active, ~1.5 µA in LPM3). Energy per run is
/// `active_cycles·I_active + idle_cycles·I_lpm` in arbitrary µA·cycle
/// units — only the *ratio* matters here.
const ACTIVE_UA: f64 = 300.0;
const LPM_UA: f64 = 1.5;

struct RunStats {
    active_cycles: u64,
    idle_cycles: u64,
    exec: bool,
    status: u16,
}

impl RunStats {
    fn energy(&self) -> f64 {
        self.active_cycles as f64 * ACTIVE_UA + self.idle_cycles as f64 * LPM_UA
    }
}

/// Runs the pump program to its idle loop, optionally pressing the abort
/// button at the given step, and splits the consumed cycles into
/// active vs low-power.
fn run_pump(device: &mut Device, abort_at_step: Option<u64>) -> RunStats {
    let mut active_cycles = 0u64;
    let mut idle_cycles = 0u64;
    let mut prev_cycle = device.mcu.cycles();
    for step in 0..500_000u64 {
        if device.mcu.cpu.regs.pc() == programs::done_pc() {
            break;
        }
        if Some(step) == abort_at_step {
            device.set_button(0, true); // the patient presses "cancel"
        }
        let r = device.step();
        let delta = r.signals.cycle - prev_cycle;
        prev_cycle = r.signals.cycle;
        if r.signals.idle {
            idle_cycles += delta;
        } else {
            active_cycles += delta;
        }
        if r.signals.fault.is_some() {
            break;
        }
    }
    RunStats {
        active_cycles,
        idle_cycles,
        exec: device.exec(),
        status: device.mcu.mem.read_word(0x0300),
    }
}

fn main() -> Result<(), AsapError> {
    let key = b"pump-key";
    let dose_cycles = 5_000u16;

    println!("=== A. ASAP, interrupt-driven dosing ===");
    let image = programs::syringe_pump_interrupt(dose_cycles)?;
    let mut device = Device::builder(&image)
        .mode(PoxMode::Asap)
        .key(key)
        .build()?;
    let a = run_pump(&mut device, None);
    println!(
        "dose status = {} (2 = completed), EXEC = {}",
        a.status, a.exec
    );
    println!(
        "cycles: {} active + {} asleep (LPM) — the CPU slept {:.0}% of the dose",
        a.active_cycles,
        a.idle_cycles,
        100.0 * a.idle_cycles as f64 / (a.active_cycles + a.idle_cycles) as f64
    );
    // The pump's three trusted ISRs (timer tick, abort button, network
    // abort) are picked up from the linked image — nothing hand-wired.
    let spec = VerifierSpec::from_image(&image)?.mode(PoxMode::Asap);
    println!("trusted ISRs from the image: {:?}", spec.trusted_isrs);
    let mut verifier = AsapVerifier::new(key, spec);
    let session = verifier.begin();
    let resp = device.attest(session.request());
    println!(
        "verification: {:?}",
        session
            .evidence(resp)
            .conclude(&verifier)
            .into_result()
            .map(|_| "accepted")
    );

    println!("\n=== B. APEX workaround: busy-wait dosing ===");
    // The busy-wait loop (dec + jnz = 4 cycles) calibrated to the same
    // dose duration.
    let image_bw = programs::syringe_pump_busywait(dose_cycles / 4)?;
    let mut device_bw = Device::builder(&image_bw)
        .mode(PoxMode::Apex)
        .key(key)
        .build()?;
    let b = run_pump(&mut device_bw, None);
    println!(
        "dose status = {} (2 = completed), EXEC = {}",
        b.status, b.exec
    );
    println!(
        "cycles: {} active + {} asleep — no sleep is possible while counting",
        b.active_cycles, b.idle_cycles
    );
    println!(
        "\nenergy ratio (busy-wait / interrupt-driven) ≈ {:.0}×",
        b.energy() / a.energy()
    );

    println!("\n=== C. Patient aborts mid-dose (ASAP) ===");
    let mut device_ab = Device::builder(&image)
        .mode(PoxMode::Asap)
        .key(key)
        .build()?;
    let c = run_pump(&mut device_ab, Some(40));
    println!(
        "dose status = {} (3 = aborted), EXEC = {}",
        c.status, c.exec
    );
    let session = verifier.begin();
    let resp = device_ab.attest(session.request());
    println!(
        "verification of the aborted run: {:?} (the abort is itself provable!)",
        session
            .evidence(resp)
            .conclude(&verifier)
            .into_result()
            .map(|_| "accepted")
    );

    println!("\n=== D. The same interrupt-driven code under plain APEX ===");
    let mut device_apex = Device::builder(&image)
        .mode(PoxMode::Apex)
        .key(key)
        .build()?;
    let d = run_pump(&mut device_apex, None);
    println!(
        "dose status = {}, EXEC = {} — the timer interrupt killed the proof (Fig. 5(c))",
        d.status, d.exec
    );
    Ok(())
}
