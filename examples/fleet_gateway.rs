//! Fifty provers, one sharded gateway, mixed verdicts.
//!
//! The verifier binds a single TCP endpoint and drives one batched PoX
//! round through a `MultiGateway` sharded over two reactor threads;
//! five prover-host threads dial in, each announcing and serving ten
//! simulated MCUs over its own connection — devices are routed by
//! their hello frames, never pinned to a transport *or a reactor*:
//! when a device's challenge is owned by one reactor but its
//! connection lives on another, the frames cross over the reactors'
//! mailboxes. Two devices are scripted to stay silent (their deadline
//! resolves to `NoResponse`), and one is enrolled under the wrong key,
//! so its honest evidence fails the MAC check: one round, three
//! different verdicts, no thread ever blocked on a slow peer.
//!
//! Run with: `cargo run --example fleet_gateway`

use asap::{programs, PoxMode, VerifierSpec};
use asap_bench::fleet::host_gateway_provers;
use asap_fleet::{DeviceId, FleetVerifier, MultiGateway};
use std::error::Error;
use std::time::Duration;

const DEVICES: u64 = 50;
const HOSTS: u64 = 5;
const REACTORS: usize = 2;

fn key_for(id: DeviceId) -> Vec<u8> {
    format!("gateway-example-key-{id}").into_bytes()
}

fn main() -> Result<(), Box<dyn Error>> {
    let ids: Vec<DeviceId> = (1..=DEVICES).map(DeviceId).collect();
    let silent = [DeviceId(17), DeviceId(42)];
    let mis_keyed = DeviceId(23);

    // Verifier side: enroll every device by key and image-derived spec.
    // Device 23 is enrolled under the wrong key — its evidence will be
    // honest and well-formed, and still fail the MAC check.
    let image = programs::fig4_authorized()?;
    let fleet = FleetVerifier::new();
    for &id in &ids {
        let key = if id == mis_keyed {
            b"not-the-device's-key".to_vec()
        } else {
            key_for(id)
        };
        fleet.register(
            id,
            &key,
            VerifierSpec::from_image(&image)?.mode(PoxMode::Asap),
        )?;
    }

    // One TCP endpoint for the whole fleet, served by two reactors.
    let mut gateway = MultiGateway::bind_tcp("127.0.0.1:0", REACTORS)?;
    let addr = gateway.listener().expect("own listener").local_addr()?;
    println!("gateway listening on {addr} ({REACTORS} reactors)");

    // Five prover hosts, ten devices each, every one dialing in on its
    // own connection and announcing its devices with hello frames.
    let hosts: Vec<_> = ids
        .chunks((DEVICES / HOSTS) as usize)
        .map(|chunk| {
            let host_ids = chunk.to_vec();
            let silent: Vec<DeviceId> = chunk
                .iter()
                .copied()
                .filter(|id| silent.contains(id))
                .collect();
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(addr).expect("dial the gateway");
                host_gateway_provers(stream, &host_ids, key_for, &silent, || ());
            })
        })
        .collect();

    println!("challenging {DEVICES} devices across {HOSTS} connections…");
    let report = gateway.drive_round(&fleet, &ids, Duration::from_millis(800))?;

    for outcome in &report.outcomes {
        if let (Some(id), Err(e)) = (outcome.device, &outcome.result) {
            println!("  device {id}: {e}");
        }
    }
    println!(
        "{report} — over {} connections, {} devices routed",
        gateway.connections(),
        gateway.routed_devices()
    );
    for (i, stats) in gateway.reactor_stats().iter().enumerate() {
        println!(
            "  reactor {i}: {} connections, {} outcomes",
            stats.connections, stats.last_round_outcomes
        );
    }

    assert_eq!(report.verified(), (DEVICES as usize) - 3);
    assert_eq!(report.no_response(), silent.len());
    assert_eq!(
        report.of(mis_keyed),
        Some(&Err(asap_fleet::FleetError::Rejected(
            asap::AsapError::BadMac
        )))
    );
    assert_eq!(fleet.in_flight(), 0, "rounds never leak sessions");

    drop(gateway); // hang up; every prover host sees EOF and exits
    for host in hosts {
        host.join().expect("prover host exits cleanly");
    }
    Ok(())
}
