//! Fleet verification over a real socket.
//!
//! The verifier and the provers share nothing but a byte stream: a
//! prover-host thread builds three simulated MCUs and serves
//! length-prefixed `Envelope` frames over its end of a socketpair; the
//! verifier drives the sans-IO `RoundEngine` through a
//! `StreamTransport` on the other end. One device is scripted to stay
//! silent, so the round also shows a deadline resolving to
//! `NoResponse` without ever stalling the devices that did answer.
//!
//! Run with: `cargo run --example fleet_socket`

use apex_pox::wire::Envelope;
use asap::{programs, Device, PoxMode, VerifierSpec};
use asap_fleet::{drive_round, serve_frames, DeviceId, FleetVerifier, StreamTransport};
use std::collections::HashMap;
use std::error::Error;
use std::time::Duration;

fn key_for(id: DeviceId) -> Vec<u8> {
    format!("example-key-{id}").into_bytes()
}

fn main() -> Result<(), Box<dyn Error>> {
    let ids: Vec<DeviceId> = (1..=3).map(DeviceId).collect();
    let silent = DeviceId(3);

    // Verifier side: enroll every device by its key and image-derived
    // spec. Note there is no Device anywhere on this side — only keys,
    // specs and bytes.
    let image = programs::fig4_authorized()?;
    let fleet = FleetVerifier::new();
    for &id in &ids {
        fleet.register(
            id,
            &key_for(id),
            VerifierSpec::from_image(&image)?.mode(PoxMode::Asap),
        )?;
    }

    // Prover host: its own thread, its own devices, nothing shared but
    // the socket. Device 3 is "partitioned" and never answers.
    let (mut transport, prover_stream) = StreamTransport::pair()?;
    let host_ids = ids.clone();
    let host = std::thread::spawn(move || {
        let image = programs::fig4_authorized().expect("image links");
        let mut devices: HashMap<DeviceId, Device> = host_ids
            .iter()
            .map(|&id| {
                let mut device = Device::builder(&image)
                    .key(&key_for(id))
                    .build()
                    .expect("device builds");
                device.run_steps(6);
                device.set_button(0, true); // async event mid-ER: ASAP shrugs
                assert!(device.run_until_pc(programs::done_pc(), 10_000));
                (id, device)
            })
            .collect();
        serve_frames(prover_stream, move |id, envelope| {
            if id == silent {
                return None; // models a crashed/partitioned prover
            }
            let response = devices.get_mut(&id)?.attest_bytes(&envelope.payload).ok()?;
            Some(Envelope::wrap(id.0, response).to_bytes())
        });
    });

    // One round: challenges out, responses (or silence) back, every
    // read timeout becoming a tick of logical time.
    println!("challenging {} devices over the socket…", ids.len());
    let report = drive_round(&fleet, &ids, &mut transport, Duration::from_millis(500))?;

    for &id in &ids {
        match report.outcome_for(id).map(|o| &o.result) {
            Some(Ok(attested)) => println!(
                "  device {id}: VERIFIED, {} bytes of authenticated output",
                attested.output.len()
            ),
            Some(Err(e)) => println!("  device {id}: {e}"),
            None => println!("  device {id}: (no outcome)"),
        }
    }
    assert_eq!(report.verified(), 2);
    assert_eq!(fleet.in_flight(), 0);
    println!(
        "round settled: {} verified, {} timed out, 0 sessions leaked",
        report.verified(),
        report.no_response()
    );

    drop(transport); // hang up; the prover host sees EOF and exits
    host.join().expect("prover host exits cleanly");
    Ok(())
}
