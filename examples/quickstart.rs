//! Quickstart: build a provable program, run it on an ASAP device,
//! attest, and verify — then watch an attack get caught.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use asap::device::{Device, PoxMode};
use asap::programs;
use asap::verifier::AsapVerifier;
use periph::gpio::PORT1_VECTOR;
use std::collections::BTreeMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let key = b"demo-device-key";

    // 1. Link the Fig. 4 program: main task + a trusted GPIO ISR, both
    //    placed inside the executable region ER by the linker script
    //    discipline (exec.start / exec.body / exec.leave).
    let image = programs::fig4_authorized()?;
    let er = image.er.unwrap();
    println!("linked ER = {} (entry {:#06x}, exit {:#06x})", er.region, er.min, er.exit);
    println!(
        "trusted ISR `gpio_isr` at {:#06x} — inside ER: {}",
        image.symbol("gpio_isr").unwrap(),
        er.region.contains(image.symbol("gpio_isr").unwrap()),
    );

    // 2. Deploy on an ASAP-equipped MCU.
    let mut device = Device::new(&image, PoxMode::Asap, key)?;

    // 3. Run the provable execution; press the button mid-run so the
    //    trusted ISR services an asynchronous event *during* ER.
    device.run_steps(10);
    device.set_button(0, true);
    device.run_until_pc(programs::done_pc(), 5_000);
    println!("after execution: EXEC = {}", device.exec());

    // 4. The verifier requests a proof of execution.
    let mut verifier = AsapVerifier::new(
        key,
        device.er_bytes(),
        BTreeMap::from([(PORT1_VECTOR, image.symbol("gpio_isr").unwrap())]),
    );
    let (er_region, or_region) = device.pox_regions();
    let request = verifier.request(er_region, or_region);
    let response = device.attest(&request);
    match verifier.verify(&request, &response) {
        Ok(()) => println!("PoX verified: the expected code ran, interrupts and all ✔"),
        Err(e) => println!("PoX rejected: {e}"),
    }

    // 5. Now the adversary rewrites an IVT entry and re-runs.
    device.attacker_cpu_write(0xFFE4, 0xF00D);
    let request = verifier.request(er_region, or_region);
    let response = device.attest(&request);
    match verifier.verify(&request, &response) {
        Ok(()) => println!("unexpected acceptance!"),
        Err(e) => println!("attack caught: {e} ✔"),
    }
    Ok(())
}
