//! Quickstart: build a provable program, run it on a PoX device, attest
//! through a typed session, and verify — in both APEX and ASAP modes —
//! then watch an attack get caught.
//!
//! One linked image drives both sides of the protocol: the device boots
//! it, and the verifier derives everything it must agree with the prover
//! about (`ER` geometry and bytes, trusted-ISR entry points, the IVT
//! region) from the same image via `VerifierSpec::from_image`. No manual
//! region wiring, no hand-maintained ISR maps.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use asap::programs;
use asap::{AsapError, AsapVerifier, Device, PoxMode, VerifierSpec};

fn main() -> Result<(), AsapError> {
    let key = b"demo-device-key";

    // 1. Link the Fig. 4 program: main task + a trusted GPIO ISR, both
    //    placed inside the executable region ER by the linker script
    //    discipline (exec.start / exec.body / exec.leave).
    let image = programs::fig4_authorized()?;
    let er = image.er.unwrap();
    println!(
        "linked ER = {} (entry {:#06x}, exit {:#06x})",
        er.region, er.min, er.exit
    );

    // 2. One spec per architecture, both derived from the linked image.
    let asap_spec = VerifierSpec::from_image(&image)?.mode(PoxMode::Asap);
    let apex_spec = VerifierSpec::from_image(&image)?.mode(PoxMode::Apex);
    println!(
        "spec from image: {} ER bytes, trusted ISRs at {:?}\n",
        asap_spec.expected_er.len(),
        asap_spec.trusted_isrs,
    );

    // 3. APEX first: the same program, run without pressing the button.
    //    An interrupt-free execution proves fine under both modes.
    println!("— APEX: interrupt-free execution —");
    let mut device = Device::builder(&image)
        .mode(PoxMode::Apex)
        .key(key)
        .build()?;
    device.run_until_pc(programs::done_pc(), 5_000);
    let mut verifier = AsapVerifier::new(key, apex_spec);
    let session = verifier.begin();
    let response = device.attest(session.request());
    match session.evidence(response).conclude(&verifier).into_result() {
        Ok(att) => println!(
            "APEX PoX verified (no IVT in the measurement: {:?}) ✔",
            att.ivt
        ),
        Err(e) => println!("APEX PoX rejected: {e}"),
    }

    // 4. ASAP: press the button mid-run so the trusted ISR services an
    //    asynchronous event *during* ER — and the proof still holds.
    println!("\n— ASAP: interrupted execution —");
    let mut device = Device::builder(&image)
        .mode(PoxMode::Asap)
        .key(key)
        .build()?;
    device.run_steps(10);
    device.set_button(0, true);
    device.run_until_pc(programs::done_pc(), 5_000);
    println!("after execution: EXEC = {}", device.exec());

    let mut verifier = AsapVerifier::new(key, asap_spec);
    let session = verifier.begin();
    // The request and response cross a byte transport in wire encoding.
    let response_bytes = device.attest_bytes(&session.request_bytes())?;
    let session = session.evidence_bytes(&response_bytes)?;
    match session.conclude(&verifier).into_result() {
        Ok(att) => println!(
            "ASAP PoX verified: the expected code ran, interrupts and all \
             ({}-byte attested IVT) ✔",
            att.ivt.map_or(0, |i| i.len()),
        ),
        Err(e) => println!("ASAP PoX rejected: {e}"),
    }

    // 5. Now the adversary rewrites an IVT entry and re-runs.
    device.attacker_cpu_write(0xFFE4, 0xF00D);
    let session = verifier.begin();
    let response = device.attest(session.request());
    match session.evidence(response).conclude(&verifier) {
        outcome if outcome.is_verified() => println!("unexpected acceptance!"),
        outcome => println!("attack caught: {} ✔", outcome.err().unwrap()),
    }
    Ok(())
}
