//! The Fig. 4 / Fig. 5 story: authorized vs unauthorized interrupts
//! during a provable execution, shown as waveforms.
//!
//! A "sensor-alarm combination": the main task runs inside `ER`; a
//! button on GPIO port 1 triggers an ISR that actuates port 5 (the
//! alarm). When the ISR is linked inside `ER`, ASAP keeps `EXEC = 1`
//! (Fig. 5(a)); when it is linked outside, the PC excursion clears
//! `EXEC` (Fig. 5(b)); and under plain APEX the interrupt alone clears
//! it (Fig. 5(c)).
//!
//! ```sh
//! cargo run --example sensor_alarm
//! ```

use asap::device::{Device, PoxMode, WaveSample};
use asap::{programs, AsapError};
use sim_wave::{Signal, WaveSet};

/// Runs one scenario: press the button a few steps into `ER` execution.
fn scenario(image: &msp430_tools::link::Image, mode: PoxMode) -> Result<Device, AsapError> {
    let mut device = Device::builder(image)
        .mode(mode)
        .key(b"alarm-key")
        .record_wave(true)
        .build()?;
    device.run_steps(6); // into the ER main loop
    device.set_button(0, true);
    device.run_until_pc(programs::done_pc(), 5_000);
    Ok(device)
}

fn waveform(device: &Device, er: openmsp430::mem::MemRegion) -> String {
    let mut w = WaveSet::new();
    w.add(Signal::bit("pc_in_er"));
    w.add(Signal::bit("irq"));
    w.add(Signal::bit("exec"));
    w.add(Signal::bus("pc", 16));
    let mut last_pc = None;
    for (i, s) in device.wave().iter().enumerate() {
        let WaveSample { pc, irq, exec, .. } = *s;
        let t = i as u64;
        w.sample("pc_in_er", t, er.contains(pc) as u64);
        w.sample("irq", t, irq as u64);
        w.sample("exec", t, exec as u64);
        if last_pc != Some(pc) {
            w.sample("pc", t, pc as u64);
            last_pc = Some(pc);
        }
    }
    w.render_ascii(0, (device.wave().len() as u64).min(70))
}

fn main() -> Result<(), AsapError> {
    let authorized = programs::fig4_authorized()?;
    let unauthorized = programs::fig4_unauthorized()?;
    let er = authorized.er.unwrap().region;

    println!("— (a) authorized interrupt under ASAP —");
    let d = scenario(&authorized, PoxMode::Asap)?;
    println!("{}", waveform(&d, er));
    println!("EXEC = {} — proof survives the trusted ISR\n", d.exec());

    println!("— (b) unauthorized interrupt under ASAP —");
    let d = scenario(&unauthorized, PoxMode::Asap)?;
    println!("{}", waveform(&d, unauthorized.er.unwrap().region));
    println!(
        "EXEC = {} — the out-of-ER ISR invalidated the proof\n",
        d.exec()
    );

    println!("— (c) any interrupt under APEX —");
    let d = scenario(&authorized, PoxMode::Apex)?;
    println!("{}", waveform(&d, er));
    println!("EXEC = {} — APEX rejects even the trusted ISR", d.exec());
    Ok(())
}
