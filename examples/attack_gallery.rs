//! A gallery of the adversary's moves from the paper's §4.1 threat
//! model, each of which must yield an invalid proof of execution.
//!
//! ```sh
//! cargo run --example attack_gallery
//! ```

use asap::device::{Device, PoxMode};
use asap::programs;
use asap::verifier::AsapVerifier;
use periph::gpio::PORT1_VECTOR;
use std::collections::BTreeMap;
use std::error::Error;

type Attack = (&'static str, fn(&mut Device));

fn main() -> Result<(), Box<dyn Error>> {
    let key = b"gallery-key";
    let image = programs::fig4_authorized()?;
    let isr = image.symbol("gpio_isr").unwrap();

    let attacks: Vec<Attack> = vec![
        ("IVT rewrite via CPU after execution", |d| {
            d.attacker_cpu_write(0xFFE4, 0xDEAD);
        }),
        ("IVT rewrite via DMA after execution", |d| {
            d.attacker_dma_write(0xFFE4, 0xDEAD);
            d.step();
        }),
        ("ER binary patched post-execution", |d| {
            let er_min = d.er().min;
            d.attacker_cpu_write(er_min + 6, 0x4343);
        }),
        ("Output (OR) forged post-execution", |d| {
            let or = d.ctx().layout.or;
            d.attacker_cpu_write(or.start(), 0xFFFF);
        }),
        ("DMA into OR post-execution", |d| {
            let or = d.ctx().layout.or;
            d.attacker_dma_write(or.start(), 0x6666);
            d.step();
        }),
        ("jump into the middle of ER (code-reuse)", |d| {
            let target = d.er().min + 8;
            d.mcu.cpu.regs.set_pc(target);
            d.step();
        }),
    ];

    println!("honest baseline first:");
    let mut device = Device::new(&image, PoxMode::Asap, key)?;
    device.run_until_pc(programs::done_pc(), 5_000);
    let mut verifier = AsapVerifier::new(
        key,
        device.er_bytes(),
        BTreeMap::from([(PORT1_VECTOR, isr)]),
    );
    let (er, or) = device.pox_regions();
    let req = verifier.request(er, or);
    let resp = device.attest(&req);
    println!("  honest run: EXEC={} verify={:?}\n", resp.exec, verifier.verify(&req, &resp).is_ok());

    let mut caught = 0;
    for (name, attack) in &attacks {
        let mut device = Device::new(&image, PoxMode::Asap, key)?;
        device.run_until_pc(programs::done_pc(), 5_000);
        attack(&mut device);
        device.run_steps(3);
        let req = verifier.request(er, or);
        let resp = device.attest(&req);
        let verdict = verifier.verify(&req, &resp);
        let detected = verdict.is_err();
        caught += detected as u32;
        println!(
            "  {name:<44} EXEC={} verdict={:<30} {}",
            resp.exec as u8,
            format!("{verdict:?}").chars().take(30).collect::<String>(),
            if detected { "caught ✔" } else { "MISSED ✘" },
        );
    }
    println!("\n{caught}/{} attacks detected", attacks.len());
    assert_eq!(caught as usize, attacks.len(), "every attack must be detected");
    Ok(())
}
