//! A gallery of the adversary's moves from the paper's §4.1 threat
//! model, each of which must yield an invalid proof of execution.
//!
//! ```sh
//! cargo run --example attack_gallery
//! ```

use asap::programs;
use asap::{AsapError, AsapVerifier, Device, PoxMode, VerifierSpec};

type Attack = (&'static str, fn(&mut Device));

fn main() -> Result<(), AsapError> {
    let key = b"gallery-key";
    let image = programs::fig4_authorized()?;

    let attacks: Vec<Attack> = vec![
        ("IVT rewrite via CPU after execution", |d| {
            d.attacker_cpu_write(0xFFE4, 0xDEAD);
        }),
        ("IVT rewrite via DMA after execution", |d| {
            d.attacker_dma_write(0xFFE4, 0xDEAD);
            d.step();
        }),
        ("ER binary patched post-execution", |d| {
            let er_min = d.er().min;
            d.attacker_cpu_write(er_min + 6, 0x4343);
        }),
        ("Output (OR) forged post-execution", |d| {
            let or = d.ctx().layout.or;
            d.attacker_cpu_write(or.start(), 0xFFFF);
        }),
        ("DMA into OR post-execution", |d| {
            let or = d.ctx().layout.or;
            d.attacker_dma_write(or.start(), 0x6666);
            d.step();
        }),
        ("jump into the middle of ER (code-reuse)", |d| {
            let target = d.er().min + 8;
            d.mcu.cpu.regs.set_pc(target);
            d.step();
        }),
    ];

    // The verifier's expectations come straight from the linked image.
    let mut verifier =
        AsapVerifier::new(key, VerifierSpec::from_image(&image)?.mode(PoxMode::Asap));

    println!("honest baseline first:");
    let mut device = Device::builder(&image)
        .mode(PoxMode::Asap)
        .key(key)
        .build()?;
    device.run_until_pc(programs::done_pc(), 5_000);
    let session = verifier.begin();
    let resp = device.attest(session.request());
    let exec = resp.exec;
    let outcome = session.evidence(resp).conclude(&verifier);
    println!(
        "  honest run: EXEC={exec} verify={}\n",
        outcome.is_verified()
    );

    let mut caught = 0;
    for (name, attack) in &attacks {
        let mut device = Device::builder(&image)
            .mode(PoxMode::Asap)
            .key(key)
            .build()?;
        device.run_until_pc(programs::done_pc(), 5_000);
        attack(&mut device);
        device.run_steps(3);
        let session = verifier.begin();
        let resp = device.attest(session.request());
        let exec = resp.exec;
        let outcome = session.evidence(resp).conclude(&verifier);
        let detected = !outcome.is_verified();
        caught += detected as u32;
        let verdict = outcome
            .err()
            .map_or("accepted".to_string(), |e| e.to_string());
        println!(
            "  {name:<44} EXEC={} verdict={:<30} {}",
            exec as u8,
            verdict.chars().take(30).collect::<String>(),
            if detected { "caught ✔" } else { "MISSED ✘" },
        );
    }
    println!("\n{caught}/{} attacks detected", attacks.len());
    assert_eq!(
        caught as usize,
        attacks.len(),
        "every attack must be detected"
    );
    Ok(())
}
