//! A gallery of the adversary's moves from the paper's §4.1 threat
//! model, each of which must yield an invalid proof of execution.
//!
//! The attacks themselves live in the literate corpus under
//! `programs/` — every `.s.md` file tagged with an `attack:` line is a
//! self-contained writeup of one move plus the MSP430 code that
//! performs it. This example just walks that gallery through the
//! single-device backend and checks the annotated verdicts.
//!
//! ```sh
//! cargo run --example attack_gallery
//! ```

use asap_corpus::{default_programs_dir, discover, run_device, Verdict};

fn main() {
    let corpus = discover(&default_programs_dir()).expect("corpus loads");

    let attacks: Vec<_> = corpus
        .into_iter()
        .filter(|p| p.manifest.attack.is_some())
        .collect();
    assert!(!attacks.is_empty(), "the corpus has attack programs");

    let report = run_device(&attacks);
    let mut caught = 0;
    for (program, result) in attacks.iter().zip(&report.results) {
        let title = program.title.as_deref().unwrap_or(&result.name);
        let attack = program.manifest.attack.as_deref().unwrap_or("?");
        let verdict = match &result.outcome {
            Ok(v) => v.to_string(),
            Err(e) => format!("error: {e}"),
        };
        let detected = !matches!(result.outcome, Ok(Verdict::Verified));
        caught += detected as u32;
        println!(
            "  {title:<46} [{attack:<16}] verdict={verdict:<22} {}",
            if detected { "caught ✔" } else { "MISSED ✘" },
        );
        assert!(
            result.passed(),
            "{}: expected {}, saw {verdict}",
            result.name,
            result.expected
        );
    }

    println!("\n{caught}/{} attacks detected", attacks.len());
    assert_eq!(
        caught as usize,
        attacks.len(),
        "every attack must be detected"
    );
}
